"""``unpicklable-task``: callables that cannot cross a process boundary.

``repro.parallel.parallel_map`` pickles the task when its config resolves
to the ``process`` backend; lambdas, closures (functions defined inside
another function) and bound instance methods either fail to pickle or
drag their whole ``self`` across.  Statically we cannot always know which
backend a call site will resolve to, so the rule flags the risky shapes
wherever ``parallel_map`` (or a ``ProcessPoolExecutor``'s ``map``/
``submit``) receives one, and call sites that pin a thread/serial backend
carry an inline suppression saying so.  The runtime complement is the
pre-flight check in :mod:`repro.parallel.executor`.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.staticcheck.findings import Finding
from repro.staticcheck.registry import Rule, register

__all__ = ["UnpicklableTaskRule"]

_TARGET_FN = "parallel_map"


def _nested_function_names(tree: ast.Module) -> set[str]:
    """Names of functions defined inside another function (closures)."""
    nested: set[str] = set()
    for outer in ast.walk(tree):
        if not isinstance(outer, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for stmt in ast.walk(outer):
            if stmt is outer:
                continue
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested.add(stmt.name)
    return nested


def _is_parallel_map(call: ast.Call) -> bool:
    fn = call.func
    if isinstance(fn, ast.Name):
        return fn.id == _TARGET_FN
    if isinstance(fn, ast.Attribute):
        return fn.attr == _TARGET_FN
    return False


@register
class UnpicklableTaskRule(Rule):
    id = "unpicklable-task"
    description = (
        "lambda/closure/bound method passed to parallel_map cannot pickle "
        "under the process backend"
    )

    def check(self, module) -> Iterator[Finding]:
        nested = _nested_function_names(module.tree)
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call) and _is_parallel_map(node) and node.args):
                continue
            task = node.args[0]
            problem = None
            if isinstance(task, ast.Lambda):
                problem = "a lambda"
            elif isinstance(task, ast.Name) and task.id in nested:
                problem = f"the locally-defined function {task.id!r}"
            elif isinstance(task, ast.Attribute) and isinstance(task.value, ast.Name) and (
                task.value.id == "self"
            ):
                problem = f"the bound method self.{task.attr}"
            if problem:
                yield self.finding(
                    module,
                    task,
                    f"parallel_map receives {problem}, which cannot pickle "
                    "under the process backend; hoist the task to module "
                    "level, or suppress if the backend is pinned to "
                    "thread/serial",
                )
