"""``silent-except``: broad handlers that swallow errors without a trace.

In the online loop a swallowed exception means the scheduler keeps serving
a stale model and nobody finds out (``web/server.py``,
``core/workflows.py``).  The rule flags ``except:``, ``except Exception:``
and ``except BaseException:`` handlers whose body neither re-raises, nor
logs/records the error, nor touches the bound exception object.  Narrow
handlers (``except ValueError:``) are trusted: catching a specific type is
itself a statement of intent.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.staticcheck.findings import Finding
from repro.staticcheck.registry import Rule, register

__all__ = ["SilentExceptRule"]

_BROAD_NAMES = {"Exception", "BaseException"}

#: Call attribute/function names that count as surfacing the error.
_REPORTING_CALLS = {
    "print", "warn", "warning", "error", "exception", "critical", "debug",
    "info", "log", "fail", "format_exc", "print_exc", "print_exception",
    "record", "capture_exception",
}


def _is_broad(handler: ast.ExceptHandler, module) -> bool:
    if handler.type is None:
        return True
    types = handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    for t in types:
        name = module.dotted_name(t)
        if name and name.rsplit(".", 1)[-1] in _BROAD_NAMES:
            return True
    return False


def _handles_the_error(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            fn = node.func
            name = fn.attr if isinstance(fn, ast.Attribute) else getattr(fn, "id", None)
            if name in _REPORTING_CALLS:
                return True
        if (
            handler.name
            and isinstance(node, ast.Name)
            and node.id == handler.name
            and isinstance(node.ctx, ast.Load)
        ):
            return True
    return False


@register
class SilentExceptRule(Rule):
    id = "silent-except"
    description = (
        "bare/broad except swallows the error; re-raise, log, or narrow the type"
    )

    def check(self, module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if _is_broad(node, module) and not _handles_the_error(node):
                what = "bare except" if node.type is None else "except Exception"
                yield self.finding(
                    module,
                    node,
                    f"{what} swallows the error silently; re-raise it, log it, "
                    "or catch the specific exception type you expect",
                )
