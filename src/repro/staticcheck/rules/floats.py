"""``float-equality``: exact ``==``/``!=`` against float values.

The memory/compute boundary is decided by ``op_j > op_r`` (paper Eq. 3 and
the ridge point); any code path that instead tests a float for *exact*
equality is one rounding step away from misclassifying a job.  The rule
fires when either side of an ``==``/``!=`` comparison contains a float
literal or an explicit ``float(...)``/``np.float64(...)`` conversion —
a deliberately literal-anchored heuristic, so integer comparisons, shape
checks and string comparisons never trigger it.  Use ``math.isclose``,
``numpy.isclose`` or an explicit tolerance instead.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.staticcheck.findings import Finding
from repro.staticcheck.registry import Rule, register

__all__ = ["FloatEqualityRule"]

_FLOAT_FACTORIES = {"float", "numpy.float64", "numpy.float32", "numpy.float16"}


def _is_float_like(module, expr: ast.AST) -> bool:
    """Does this expression visibly produce a float?"""
    for node in ast.walk(expr):
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            return True
        if isinstance(node, ast.Call):
            name = module.dotted_name(node.func)
            if name in _FLOAT_FACTORIES:
                return True
    return False


@register
class FloatEqualityRule(Rule):
    id = "float-equality"
    description = (
        "exact ==/!= on float values; use math.isclose/numpy.isclose or an "
        "explicit tolerance"
    )

    def check(self, module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_float_like(module, left) or _is_float_like(module, right):
                    yield self.finding(
                        module,
                        node,
                        "exact float equality is brittle at region boundaries; "
                        "compare with a tolerance (math.isclose / numpy.isclose)",
                    )
                    break
