"""``mutable-default``: mutable objects evaluated once as default arguments.

A ``def f(x, acc=[])`` default is created at function-definition time and
shared across every call — accumulated state leaks between training runs,
which is exactly the cross-run contamination an online framework cannot
afford.  Flags list/dict/set displays, comprehensions, and bare
``list()``/``dict()``/``set()``/``bytearray()`` calls in default position;
the fix is a ``None`` default resolved inside the body.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.staticcheck.findings import Finding
from repro.staticcheck.registry import Rule, register

__all__ = ["MutableDefaultRule"]

_MUTABLE_DISPLAYS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
_MUTABLE_FACTORIES = {"list", "dict", "set", "bytearray", "collections.defaultdict"}


def _is_mutable_default(module, expr: ast.AST) -> bool:
    if isinstance(expr, _MUTABLE_DISPLAYS):
        return True
    if isinstance(expr, ast.Call):
        return module.dotted_name(expr.func) in _MUTABLE_FACTORIES
    return False


@register
class MutableDefaultRule(Rule):
    id = "mutable-default"
    description = "mutable default argument is shared across calls; default to None"

    def check(self, module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = [*node.args.defaults, *node.args.kw_defaults]
            for default in defaults:
                if default is not None and _is_mutable_default(module, default):
                    label = getattr(node, "name", "<lambda>")
                    yield self.finding(
                        module,
                        default,
                        f"mutable default in {label}() is evaluated once and "
                        "shared across calls; use None and build it in the body",
                    )
