"""File discovery, parsing, rule execution and suppression filtering.

The engine is the only component that touches the filesystem; single-file
rules see a :class:`ModuleContext` with the parsed tree, the raw source,
and shared helpers (import-alias resolution, dotted-name rendering) so
each rule stays a pure AST visitor.  Project rules see a
:class:`~repro.staticcheck.project.graph.ProjectContext` assembled from
per-module summaries.

Incremental operation: with ``cache_path`` set, every file's parse,
single-file findings and module summary are keyed on its content hash
(plus the hashes of its import-graph dependencies) in an on-disk JSON
cache, so a warm run re-parses only what changed — see
:mod:`repro.staticcheck.cache`.  With ``jobs > 1`` cold files are parsed
through :func:`repro.parallel.parallel_map` on the process backend.
"""

from __future__ import annotations

import ast
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.staticcheck.cache import AnalysisCache, file_digest, rule_fingerprint
from repro.staticcheck.findings import Finding
from repro.staticcheck.registry import (
    ProjectRule,
    Rule,
    all_project_rules,
    all_rules,
    resolve_project_rules,
    resolve_rules,
)
from repro.staticcheck.suppressions import (
    WILDCARD,
    Directive,
    SuppressionIndex,
    parse_directives,
)

__all__ = [
    "CheckResult",
    "CheckStats",
    "ModuleContext",
    "UsageError",
    "check_paths",
    "check_source",
    "iter_python_files",
]

#: Rule id used for files that do not parse; not suppressible.
SYNTAX_ERROR_ID = "syntax-error"

#: Rule id for ``ignore[...]`` directives naming a rule that does not exist.
UNKNOWN_SUPPRESSION_ID = "unknown-suppression"

#: Rule id for ``ignore[...]`` directives that no longer silence anything.
UNUSED_SUPPRESSION_ID = "unused-suppression"

_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache", "build", "dist"}


class UsageError(ValueError):
    """A caller mistake (bad path arguments), reported as exit code 2."""


@dataclass
class ModuleContext:
    """Everything a single-file rule may inspect about one module."""

    path: str
    source: str
    tree: ast.Module
    module_name: str = ""
    is_package: bool = False
    _imports: dict[str, str] | None = field(default=None, repr=False)

    # -- shared helpers ----------------------------------------------------

    @property
    def imports(self) -> dict[str, str]:
        """Local name -> fully qualified origin, for every import.

        ``import numpy as np`` maps ``np -> numpy``; ``from numpy.random
        import default_rng as rng`` maps ``rng -> numpy.random.default_rng``.
        Relative imports resolve to absolute names when ``module_name`` is
        known (``from .encoder import enc`` inside ``repro.core.server``
        maps ``enc -> repro.core.encoder.enc``).
        """
        if self._imports is None:
            from repro.staticcheck.project.summary import build_import_table

            self._imports = build_import_table(self.tree, self.module_name, self.is_package)
        return self._imports

    def dotted_name(self, node: ast.AST) -> str | None:
        """Render ``a.b.c`` attribute/name chains, resolving import aliases.

        Returns ``None`` for anything that is not a pure name chain (calls,
        subscripts, ...), so callers can simply compare against canonical
        module paths like ``numpy.random.default_rng``.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.imports.get(node.id, node.id)
        parts.append(root)
        return ".".join(reversed(parts))


@dataclass
class CheckStats:
    """What a run actually did — surfaced by the CLI's ``--statistics``."""

    files_checked: int = 0
    reference_files: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    jobs: int = 1
    wall_seconds: float = 0.0
    findings_per_rule: dict[str, int] = field(default_factory=dict)
    #: CFG/fixpoint effort actually spent this run (cold files only —
    #: cache hits did no flow work, which is the point of the cache).
    flow_cfgs: int = 0
    flow_blocks: int = 0
    flow_iterations: int = 0
    #: perf-tier effort, same cold-files-only accounting.
    perf_hot_functions: int = 0
    perf_array_fixpoints: int = 0
    #: procs-tier effort, same cold-files-only accounting.
    procs_boundaries: int = 0
    procs_segments: int = 0
    #: capacity-tier effort, same cold-files-only accounting.
    capacity_fixpoints: int = 0
    capacity_streaming: int = 0
    #: sysmodel-tier effort, same cold-files-only accounting.
    sysmodel_classes: int = 0
    sysmodel_specs: int = 0


@dataclass
class CheckResult:
    """Outcome of a run: active, suppressed and baselined findings."""

    findings: list[Finding]
    suppressed: list[Finding]
    files_checked: int
    baselined: list[Finding] = field(default_factory=list)
    stats: CheckStats | None = None

    @property
    def clean(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict:
        # Deliberately excludes ``stats`` (wall time is never
        # reproducible) so warm-cache reports are byte-identical to cold
        # ones.
        return {
            "version": 2,
            "files_checked": self.files_checked,
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [f.to_dict() for f in self.suppressed],
            "baselined": [f.to_dict() for f in self.baselined],
        }


def _known_rule_ids(extra: Iterable[str] = ()) -> set[str]:
    known = set(all_rules()) | set(all_project_rules())
    known.update(extra)
    known.update((SYNTAX_ERROR_ID, UNKNOWN_SUPPRESSION_ID, UNUSED_SUPPRESSION_ID, WILDCARD))
    return known


def _directive_findings(path: str, directives: list[Directive], known_ids: set[str]) -> list[Finding]:
    """Flag ignore[...] directives naming rules that do not exist."""
    findings = []
    for directive in directives:
        for rule_id in sorted(directive.rule_ids - known_ids):
            findings.append(
                Finding(
                    path=path,
                    line=directive.line,
                    col=0,
                    rule_id=UNKNOWN_SUPPRESSION_ID,
                    message=(
                        f"ignore[{rule_id}] names a rule that does not exist; "
                        "the directive silences nothing (see --list-rules)"
                    ),
                )
            )
    return findings


def _partition(
    raw: list[Finding], index: SuppressionIndex
) -> tuple[list[Finding], list[Finding]]:
    active: list[Finding] = []
    suppressed: list[Finding] = []
    for finding in raw:
        if finding.rule_id != SYNTAX_ERROR_ID and index.covers(finding.line, finding.rule_id):
            suppressed.append(
                Finding(
                    path=finding.path,
                    line=finding.line,
                    col=finding.col,
                    rule_id=finding.rule_id,
                    message=finding.message,
                    suppressed=True,
                )
            )
        else:
            active.append(finding)
    return active, suppressed


def check_source(
    source: str,
    path: str = "<string>",
    rules: Sequence[Rule] | None = None,
) -> CheckResult:
    """Run the single-file rule set over one source string."""
    rules = list(rules) if rules is not None else resolve_rules()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        finding = Finding(
            path=path,
            line=exc.lineno or 1,
            col=(exc.offset or 1) - 1,
            rule_id=SYNTAX_ERROR_ID,
            message=f"file does not parse: {exc.msg}",
        )
        return CheckResult(findings=[finding], suppressed=[], files_checked=1)

    module = ModuleContext(path=path, source=source, tree=tree)
    directives = parse_directives(source)
    index = SuppressionIndex.from_directives(directives)
    raw = [finding for rule in rules for finding in rule.check(module)]
    raw.extend(_directive_findings(path, directives, _known_rule_ids(r.id for r in rules)))
    active, suppressed = _partition(raw, index)
    return CheckResult(findings=sorted(active), suppressed=sorted(suppressed), files_checked=1)


def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated .py file list.

    Directories are walked recursively; explicit file arguments must be
    existing ``.py`` files — a missing path raises ``FileNotFoundError``
    and an existing non-Python file raises :class:`UsageError` instead of
    being silently dropped (``repro.staticcheck README.md`` must not
    exit 0 "clean").
    """
    seen: set[Path] = set()
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            for child in sorted(p.rglob("*.py")):
                if not any(part in _SKIP_DIRS for part in child.parts):
                    seen.add(child)
        elif not p.exists():
            raise FileNotFoundError(f"no such file or directory: {p}")
        elif p.suffix != ".py":
            raise UsageError(f"not a python file: {p} (only .py files can be checked)")
        else:
            seen.add(p)
    return sorted(seen)


# ---------------------------------------------------------------------------
# per-file analysis (top-level so the process backend can pickle it)


def _analyze_file(task: tuple[str, tuple[str, ...] | None]) -> dict:
    """Parse one file and run the single-file layer; returns a cache entry.

    ``task`` is ``(path, rule_ids)`` — ids rather than instances so the
    tuple pickles cheaply across process boundaries; ``None`` means the
    full registry.
    """
    from repro.staticcheck import capacity, flow, perf, procs, sysmodel
    from repro.staticcheck.project.summary import build_summary, module_name_for_path

    path_str, rule_ids = task
    flow_before = flow.snapshot_counters()
    perf_before = perf.snapshot_counters()
    procs_before = procs.snapshot_counters()
    capacity_before = capacity.snapshot_counters()
    sysmodel_before = sysmodel.snapshot_counters()
    path = Path(path_str)
    source = path.read_text(encoding="utf-8")
    if rule_ids is None:
        rules: list[Rule] = resolve_rules()
    else:  # may be empty: project-rules-only runs select no file rules
        registry = all_rules()
        rules = [registry[rule_id]() for rule_id in rule_ids]
    entry: dict = {"hash": file_digest(source.encode("utf-8")), "deps": {}}
    try:
        tree = ast.parse(source, filename=path_str)
    except SyntaxError as exc:
        finding = Finding(
            path=path_str,
            line=exc.lineno or 1,
            col=(exc.offset or 1) - 1,
            rule_id=SYNTAX_ERROR_ID,
            message=f"file does not parse: {exc.msg}",
        )
        entry.update({"findings": [finding.to_dict()], "suppressed": [], "summary": None})
        return entry

    module_name, is_package = module_name_for_path(path)
    module = ModuleContext(
        path=path_str, source=source, tree=tree, module_name=module_name, is_package=is_package
    )
    directives = parse_directives(source)
    index = SuppressionIndex.from_directives(directives)
    raw = [finding for rule in rules for finding in rule.check(module)]
    raw.extend(_directive_findings(path_str, directives, _known_rule_ids(r.id for r in rules)))
    active, suppressed = _partition(raw, index)
    summary = build_summary(path_str, source, tree, module_name, is_package)
    flow_after = flow.snapshot_counters()
    perf_after = perf.snapshot_counters()
    procs_after = procs.snapshot_counters()
    capacity_after = capacity.snapshot_counters()
    sysmodel_after = sysmodel.snapshot_counters()
    entry.update(
        {
            "findings": [f.to_dict() for f in sorted(active)],
            "suppressed": [f.to_dict() for f in sorted(suppressed)],
            "summary": summary.to_dict(),
            "flow": {k: flow_after[k] - flow_before[k] for k in flow_after},
            "perf": {k: perf_after[k] - perf_before[k] for k in perf_after},
            "procs": {k: procs_after[k] - procs_before[k] for k in procs_after},
            "capacity": {k: capacity_after[k] - capacity_before[k] for k in capacity_after},
            "sysmodel": {k: sysmodel_after[k] - sysmodel_before[k] for k in sysmodel_after},
        }
    )
    return entry


def _harvest_reference(path_str: str) -> dict:
    """Usage facts (imports, star imports, dotted refs) of one reference file."""
    from repro.staticcheck.project.summary import (
        build_import_table,
        dotted_name,
        module_name_for_path,
        resolve_relative,
    )

    path = Path(path_str)
    source = path.read_text(encoding="utf-8")
    entry = {"hash": file_digest(source.encode("utf-8")), "uses": [], "stars": []}
    try:
        tree = ast.parse(source, filename=path_str)
    except SyntaxError:
        return entry
    module_name, is_package = module_name_for_path(path)
    imports = build_import_table(tree, module_name, is_package)
    uses = {origin for origin in imports.values() if "." in origin}
    stars: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute):
            name = dotted_name(node, imports)
            if name and "." in name:
                uses.add(name)
        elif isinstance(node, ast.ImportFrom) and any(a.name == "*" for a in node.names):
            origin = (
                node.module
                if node.level == 0
                else resolve_relative(module_name, is_package, node.level, node.module)
            )
            if origin:
                stars.add(origin)
    entry["uses"] = sorted(uses)
    entry["stars"] = sorted(stars)
    return entry


def _finding_from_dict(doc: dict) -> Finding:
    return Finding(
        path=doc["path"],
        line=doc["line"],
        col=doc["col"],
        rule_id=doc["rule"],
        message=doc["message"],
        suppressed=doc.get("suppressed", False),
    )


def _run_project_rules(
    project_rules: Sequence[ProjectRule],
    summaries: dict,
    reference_usage: list[dict],
    indexes: dict[str, SuppressionIndex],
) -> tuple[list[Finding], list[Finding]]:
    from repro.staticcheck.project.graph import ProjectContext

    project = ProjectContext(summaries=summaries, reference_usage=reference_usage)
    active: list[Finding] = []
    suppressed: list[Finding] = []
    for rule in project_rules:
        for finding in rule.check(project):
            index = indexes.get(finding.path)
            file_active, file_suppressed = _partition([finding], index or SuppressionIndex({}))
            active.extend(file_active)
            suppressed.extend(file_suppressed)
    return active, suppressed


def _unused_suppression_findings(
    directives_by_path: dict[str, list[Directive]],
    suppressed: list[Finding],
    ran_ids: set[str],
    full_run: bool,
) -> list[Finding]:
    """Flag ignore[...] directives that silenced nothing this run.

    A directive is *used* when some finding on a line it covers was
    suppressed under one of its rule ids.  Per-rule checks only apply to
    rules that actually ran (an ``ignore[unseeded-rng]`` is not stale
    just because ``--select`` skipped that rule), and the ``ignore[*]``
    wildcard is only judged on full-registry runs for the same reason.
    Unknown rule ids are already reported as ``unknown-suppression`` and
    are skipped here.
    """
    hits: dict[str, set[tuple[str, int]]] = {}
    lines_hit: dict[str, set[int]] = {}
    for finding in suppressed:
        hits.setdefault(finding.path, set()).add((finding.rule_id, finding.line))
        lines_hit.setdefault(finding.path, set()).add(finding.line)
    findings: list[Finding] = []
    for path in sorted(directives_by_path):
        path_hits = hits.get(path, set())
        path_lines = lines_hit.get(path, set())
        for directive in directives_by_path[path]:
            if WILDCARD in directive.rule_ids:
                if full_run and not any(line in path_lines for line in directive.all_lines):
                    findings.append(
                        Finding(
                            path=path,
                            line=directive.line,
                            col=0,
                            rule_id=UNUSED_SUPPRESSION_ID,
                            message=(
                                "ignore[*] suppresses nothing on this line; "
                                "remove the stale directive"
                            ),
                        )
                    )
                continue
            for rule_id in sorted(directive.rule_ids):
                if rule_id not in ran_ids:
                    continue
                if not any((rule_id, line) in path_hits for line in directive.all_lines):
                    findings.append(
                        Finding(
                            path=path,
                            line=directive.line,
                            col=0,
                            rule_id=UNUSED_SUPPRESSION_ID,
                            message=(
                                f"ignore[{rule_id}] suppresses nothing on this "
                                "line; the finding it silenced is gone — remove "
                                "the stale directive"
                            ),
                        )
                    )
    return findings


def check_paths(
    paths: Iterable[str | Path],
    rules: Sequence[Rule] | None = None,
    project_rules: Sequence[ProjectRule] | None = None,
    *,
    reference_paths: Iterable[str | Path] = (),
    cache_path: str | Path | None = None,
    jobs: int = 1,
) -> CheckResult:
    """Run single-file and project rules over every ``.py`` under ``paths``.

    ``reference_paths`` are parsed for import-usage facts only (they feed
    the ``dead-export`` rule) and are never linted.  ``cache_path``
    enables the incremental cache; ``jobs > 1`` parses cold files in
    parallel on the process backend.
    """
    started = time.perf_counter()
    rules = list(rules) if rules is not None else resolve_rules()
    project_rules = (
        list(project_rules) if project_rules is not None else resolve_project_rules()
    )
    files = iter_python_files(paths)
    file_keys = [str(f) for f in files]
    reference_files = [
        f for f in iter_python_files(reference_paths) if str(f) not in set(file_keys)
    ]

    rule_ids = tuple(sorted(r.id for r in rules))
    registry_backed = set(rule_ids) <= set(all_rules())
    fingerprint = rule_fingerprint(list(rule_ids), sorted(r.id for r in project_rules))
    cache = AnalysisCache.load(cache_path, fingerprint) if cache_path is not None else None

    digests = {str(f): file_digest(f.read_bytes()) for f in files}

    entries: dict[str, dict] = {}
    cold: list[str] = []
    for key in file_keys:
        entry = cache.lookup(key, digests[key], digests) if cache is not None else None
        if entry is not None:
            entries[key] = entry
        else:
            cold.append(key)

    if cold:
        worker_rule_ids = rule_ids if registry_backed else None
        if jobs > 1 and registry_backed:
            from repro.parallel.executor import ExecutorConfig, parallel_map

            tasks = [(key, worker_rule_ids) for key in cold]
            fresh = parallel_map(
                _analyze_file, tasks, config=ExecutorConfig(backend="process", n_workers=jobs)
            )
            entries.update(zip(cold, fresh))
        elif registry_backed:
            for key in cold:
                entries[key] = _analyze_file((key, worker_rule_ids))
        else:
            # Custom rule instances cannot be rebuilt from ids: run them
            # in-process against each cold file.
            from repro.staticcheck.project.summary import build_summary

            for key in cold:
                source = Path(key).read_text(encoding="utf-8")
                result = check_source(source, path=key, rules=rules)
                try:
                    tree = ast.parse(source, filename=key)
                    summary = build_summary(key, source, tree).to_dict()
                except SyntaxError:
                    summary = None
                entries[key] = {
                    "hash": digests[key],
                    "deps": {},
                    "findings": [f.to_dict() for f in result.findings],
                    "suppressed": [f.to_dict() for f in result.suppressed],
                    "summary": summary,
                }

    # -- reference usage ----------------------------------------------------
    reference_usage: list[dict] = []
    for f in reference_files:
        key = str(f)
        digest = file_digest(f.read_bytes())
        entry = cache.lookup_reference(key, digest) if cache is not None else None
        if entry is None:
            entry = _harvest_reference(key)
            if cache is not None:
                cache.store_reference(key, entry)
        reference_usage.append({"uses": entry["uses"], "stars": entry["stars"]})

    # -- assemble project context and run project rules ---------------------
    from repro.staticcheck.project.summary import ModuleSummary

    summaries: dict[str, ModuleSummary] = {}
    indexes: dict[str, SuppressionIndex] = {}
    directives_by_path: dict[str, list[Directive]] = {}
    for key in file_keys:
        summary_doc = entries[key].get("summary")
        if summary_doc is None:
            continue
        summary = ModuleSummary.from_dict(summary_doc)
        summaries[summary.module] = summary
        directives_by_path[key] = [
            Directive(line=d["line"], rule_ids=frozenset(d["rules"]), covers=tuple(d["covers"]))
            for d in summary.directives
        ]
        indexes[key] = SuppressionIndex.from_directives(directives_by_path[key])

    findings = [
        _finding_from_dict(doc) for key in file_keys for doc in entries[key]["findings"]
    ]
    suppressed = [
        _finding_from_dict(doc) for key in file_keys for doc in entries[key]["suppressed"]
    ]
    if project_rules:
        project_active, project_suppressed = _run_project_rules(
            project_rules, summaries, reference_usage, indexes
        )
        findings.extend(project_active)
        suppressed.extend(project_suppressed)

    # -- stale-suppression audit (after every layer has had its say) ---------
    ran_ids = set(rule_ids) | {r.id for r in project_rules} | {UNKNOWN_SUPPRESSION_ID}
    full_run = registry_backed and set(rule_ids) == set(all_rules()) and {
        r.id for r in project_rules
    } == set(all_project_rules())
    for unused in _unused_suppression_findings(directives_by_path, suppressed, ran_ids, full_run):
        # Only an *explicit* ignore[unused-suppression] silences the audit:
        # letting ignore[*] swallow its own staleness report would make
        # stale wildcards impossible to surface.
        explicit = any(
            UNUSED_SUPPRESSION_ID in directive.rule_ids and unused.line in directive.all_lines
            for directive in directives_by_path.get(unused.path, [])
        )
        if explicit:
            suppressed.append(
                Finding(
                    path=unused.path,
                    line=unused.line,
                    col=unused.col,
                    rule_id=unused.rule_id,
                    message=unused.message,
                    suppressed=True,
                )
            )
        else:
            findings.append(unused)

    # -- record dependency hashes and persist the cache ----------------------
    if cache is not None:
        from repro.staticcheck.project.graph import ImportGraph

        graph = ImportGraph(summaries)
        module_paths = {name: s.path for name, s in summaries.items()}
        for name, summary in summaries.items():
            deps = {}
            for dep_module in graph.dependencies(name):
                dep_path = module_paths.get(dep_module)
                if dep_path is not None and dep_path in digests:
                    deps[dep_path] = digests[dep_path]
            entries[summary.path]["deps"] = deps
        for key in file_keys:
            cache.store(key, entries[key])
        reference_keys = {str(f) for f in reference_files}
        cache.save(keep_only=set(file_keys) | reference_keys)

    flow_totals = {"cfgs": 0, "blocks": 0, "iterations": 0}
    perf_totals = {"hot_functions": 0, "array_fixpoints": 0}
    procs_totals = {"boundaries": 0, "segments": 0}
    capacity_totals = {"scale_fixpoints": 0, "streaming_functions": 0}
    sysmodel_totals = {"contract_classes": 0, "spec_declarations": 0}
    for key in cold:
        for counter, value in entries[key].get("flow", {}).items():
            flow_totals[counter] = flow_totals.get(counter, 0) + value
        for counter, value in entries[key].get("perf", {}).items():
            perf_totals[counter] = perf_totals.get(counter, 0) + value
        for counter, value in entries[key].get("procs", {}).items():
            procs_totals[counter] = procs_totals.get(counter, 0) + value
        for counter, value in entries[key].get("capacity", {}).items():
            capacity_totals[counter] = capacity_totals.get(counter, 0) + value
        for counter, value in entries[key].get("sysmodel", {}).items():
            sysmodel_totals[counter] = sysmodel_totals.get(counter, 0) + value

    stats = CheckStats(
        files_checked=len(files),
        reference_files=len(reference_files),
        cache_hits=cache.hits if cache is not None else 0,
        cache_misses=cache.misses if cache is not None else len(cold),
        jobs=jobs,
        wall_seconds=time.perf_counter() - started,
        flow_cfgs=flow_totals["cfgs"],
        flow_blocks=flow_totals["blocks"],
        flow_iterations=flow_totals["iterations"],
        perf_hot_functions=perf_totals["hot_functions"],
        perf_array_fixpoints=perf_totals["array_fixpoints"],
        procs_boundaries=procs_totals["boundaries"],
        procs_segments=procs_totals["segments"],
        capacity_fixpoints=capacity_totals["scale_fixpoints"],
        capacity_streaming=capacity_totals["streaming_functions"],
        sysmodel_classes=sysmodel_totals["contract_classes"],
        sysmodel_specs=sysmodel_totals["spec_declarations"],
    )
    result = CheckResult(
        findings=sorted(findings),
        suppressed=sorted(suppressed),
        files_checked=len(files),
        stats=stats,
    )
    counts: dict[str, int] = {}
    for finding in result.findings:
        counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
    stats.findings_per_rule = counts
    return result
