"""File discovery, parsing, rule execution and suppression filtering.

The engine is the only component that touches the filesystem; rules see a
:class:`ModuleContext` with the parsed tree, the raw source, and shared
helpers (import-alias resolution, dotted-name rendering) so each rule
stays a pure AST visitor.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.staticcheck.findings import Finding
from repro.staticcheck.registry import Rule, resolve_rules
from repro.staticcheck.suppressions import parse_suppressions

__all__ = ["ModuleContext", "CheckResult", "check_source", "check_paths", "iter_python_files"]

#: Rule id used for files that do not parse; not suppressible.
SYNTAX_ERROR_ID = "syntax-error"

_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache", "build", "dist"}


@dataclass
class ModuleContext:
    """Everything a rule may inspect about one module."""

    path: str
    source: str
    tree: ast.Module
    _imports: dict[str, str] | None = field(default=None, repr=False)

    # -- shared helpers ----------------------------------------------------

    @property
    def imports(self) -> dict[str, str]:
        """Local name -> fully qualified origin, for top-level imports.

        ``import numpy as np`` maps ``np -> numpy``; ``from numpy.random
        import default_rng as rng`` maps ``rng -> numpy.random.default_rng``.
        """
        if self._imports is None:
            table: dict[str, str] = {}
            for node in ast.walk(self.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        table[alias.asname or alias.name.split(".")[0]] = (
                            alias.name if alias.asname else alias.name.split(".")[0]
                        )
                elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                    for alias in node.names:
                        if alias.name == "*":
                            continue
                        table[alias.asname or alias.name] = f"{node.module}.{alias.name}"
            self._imports = table
        return self._imports

    def dotted_name(self, node: ast.AST) -> str | None:
        """Render ``a.b.c`` attribute/name chains, resolving import aliases.

        Returns ``None`` for anything that is not a pure name chain (calls,
        subscripts, ...), so callers can simply compare against canonical
        module paths like ``numpy.random.default_rng``.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.imports.get(node.id, node.id)
        parts.append(root)
        return ".".join(reversed(parts))


@dataclass
class CheckResult:
    """Outcome of a run: active findings, suppressed findings, file count."""

    findings: list[Finding]
    suppressed: list[Finding]
    files_checked: int

    @property
    def clean(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict:
        return {
            "version": 1,
            "files_checked": self.files_checked,
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [f.to_dict() for f in self.suppressed],
        }


def check_source(
    source: str,
    path: str = "<string>",
    rules: Sequence[Rule] | None = None,
) -> CheckResult:
    """Run the rule set over one source string (the unit-test entry point)."""
    rules = list(rules) if rules is not None else resolve_rules()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        finding = Finding(
            path=path,
            line=exc.lineno or 1,
            col=(exc.offset or 1) - 1,
            rule_id=SYNTAX_ERROR_ID,
            message=f"file does not parse: {exc.msg}",
        )
        return CheckResult(findings=[finding], suppressed=[], files_checked=1)

    module = ModuleContext(path=path, source=source, tree=tree)
    index = parse_suppressions(source)
    active: list[Finding] = []
    suppressed: list[Finding] = []
    for rule in rules:
        for finding in rule.check(module):
            if index.covers(finding.line, finding.rule_id):
                suppressed.append(
                    Finding(
                        path=finding.path,
                        line=finding.line,
                        col=finding.col,
                        rule_id=finding.rule_id,
                        message=finding.message,
                        suppressed=True,
                    )
                )
            else:
                active.append(finding)
    return CheckResult(findings=sorted(active), suppressed=sorted(suppressed), files_checked=1)


def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated .py file list."""
    seen: set[Path] = set()
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            for child in sorted(p.rglob("*.py")):
                if not any(part in _SKIP_DIRS for part in child.parts):
                    seen.add(child)
        elif p.suffix == ".py" and p.exists():
            seen.add(p)
        elif not p.exists():
            raise FileNotFoundError(f"no such file or directory: {p}")
    return sorted(seen)


def check_paths(
    paths: Iterable[str | Path],
    rules: Sequence[Rule] | None = None,
) -> CheckResult:
    """Run the rule set over every ``.py`` file under ``paths``."""
    rules = list(rules) if rules is not None else resolve_rules()
    findings: list[Finding] = []
    suppressed: list[Finding] = []
    files = iter_python_files(paths)
    for file in files:
        result = check_source(file.read_text(encoding="utf-8"), path=str(file), rules=rules)
        findings.extend(result.findings)
        suppressed.extend(result.suppressed)
    return CheckResult(
        findings=sorted(findings), suppressed=sorted(suppressed), files_checked=len(files)
    )
