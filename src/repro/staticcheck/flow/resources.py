"""``resource-leak`` / ``double-release``: must-release path analysis.

The online deployment acquires long-lived resources — SharedArray
segments backing the parallel characterizer, executor pools, files,
storage connections, bare ``lock.acquire()`` calls — and a single
exception path that skips the release turns the cron-style retrain/serve
loop into a slow leak.  This analysis tracks each acquisition along the
CFG (including the exception edges the builder models) and reports:

* ``resource-leak`` — an acquisition with *some* path to function exit
  on which no release runs, reported at the acquisition site;
* ``double-release`` — a release that can execute when the resource may
  already be released (conditionally-released then released again),
  reported at the second release site.

The state maps local variable names to *fact sets* — ``(status, kind,
release_verb, line)`` tuples with status ``held`` or ``released`` — and
the join is set union, so both families are may-analyses: a fact
survives if it holds on any path.

Deliberate scope limits, tuned to stay quiet on correct code:

* ``with``-managed acquisitions are never tracked — the context manager
  *is* the release, on every path;
* only ``Name``-rooted receivers are tracked (``self._lock.acquire()``
  belongs to the project-level concurrency rules);
* a tracked value escapes — and tracking stops — when it is returned,
  yielded, stored into an attribute/subscript/container, passed to a
  constructor (capitalized callee) or to ``append``-like registration
  methods, or re-aliased; ownership moved elsewhere is someone else's
  obligation.  Plain argument passing does **not** escape: a helper may
  *use* the resource, but the acquiring frame still owns the release.
"""

from __future__ import annotations

import ast

from repro.staticcheck.findings import Finding
from repro.staticcheck.flow import cfgs_for
from repro.staticcheck.flow.cfg import ExceptBind, ForBind, Test, WithEnter, WithExit
from repro.staticcheck.flow.fixpoint import ForwardAnalysis, run_forward
from repro.staticcheck.registry import Rule, register

__all__ = ["DoubleReleaseRule", "ResourceLeakRule"]

#: Factory patterns: matcher -> (kind shown in messages, release verb).
#: Dotted names come from ModuleContext.dotted_name (aliases resolved).
_EXACT_FACTORIES = {
    "open": ("file handle", "close"),
    "io.open": ("file handle", "close"),
    "sqlite3.connect": ("database connection", "close"),
    "socket.socket": ("socket", "close"),
}
_SUFFIX_FACTORIES = {
    "SharedArray.create": ("SharedArray segment", "close"),
    "SharedArray.from_array": ("SharedArray segment", "close"),
    "SharedArray.attach": ("SharedArray segment", "close"),
    "ThreadPoolExecutor": ("executor pool", "shutdown"),
    "ProcessPoolExecutor": ("executor pool", "shutdown"),
}

#: Receiver methods that move ownership into the receiver's structure.
_REGISTERS = {"add", "append", "appendleft", "put", "put_nowait", "register", "setdefault"}

_HELD = "held"
_RELEASED = "released"


def _factory(dotted: str | None):
    if dotted is None:
        return None
    hit = _EXACT_FACTORIES.get(dotted)
    if hit is not None:
        return hit
    for suffix, info in _SUFFIX_FACTORIES.items():
        if dotted == suffix or dotted.endswith("." + suffix):
            return info
    return None


class _ResourceAnalysis(ForwardAnalysis):
    """var name -> frozenset of (status, kind, release_verb, acq_line)."""

    def __init__(self, module):
        self.module = module

    def initial(self):
        return {}

    def join(self, a, b):
        if a == b:
            return a
        out = dict(a)
        for name, facts in b.items():
            out[name] = out.get(name, frozenset()) | facts
        return out

    # -- transfer ----------------------------------------------------------

    def transfer(self, element, state):
        if isinstance(element, (Test, WithExit)):
            return state
        if isinstance(element, ForBind):
            return self._drop_bound(element.node.target, state)
        if isinstance(element, WithEnter):
            # The context manager owns the release; also shadow any
            # previously tracked name the ``as`` target rebinds.
            if element.item.optional_vars is not None:
                return self._drop_bound(element.item.optional_vars, state)
            return state
        if isinstance(element, ExceptBind):
            name = element.handler.name
            return {k: v for k, v in state.items() if k != name} if name in state else state
        if not isinstance(element, ast.stmt):
            return state
        return self._stmt(element, state, None)

    def _stmt(self, stmt, state, report):
        out = state
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            out = self._assign(stmt, stmt.targets[0], stmt.value, out, report)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            out = self._assign(stmt, stmt.target, stmt.value, out, report)
        elif isinstance(stmt, (ast.Return, ast.Expr)) and getattr(stmt, "value", None) is not None:
            out = self._drop_escapes(stmt.value, out, returns=isinstance(stmt, ast.Return))
        out = self._apply_calls(stmt, out, report)
        return out

    def _assign(self, stmt, target, value, state, report):
        factory = _factory(self.module.dotted_name(value.func)) if isinstance(
            value, ast.Call
        ) else None
        if isinstance(target, ast.Name):
            if factory is not None:
                kind, release = factory
                old = state.get(target.id, frozenset())
                if report is not None:
                    for status, old_kind, old_release, line in old:
                        if status == _HELD:
                            report(
                                "resource-leak",
                                line,
                                f"{old_kind} acquired on line {line} is rebound "
                                f"before {old_release}() on some path",
                            )
                out = dict(state)
                out[target.id] = frozenset({(_HELD, kind, release, stmt.lineno)})
                return out
            # Rebinding (aliasing, deriving) a tracked name: the old
            # obligation moved; tracking either name further would guess.
            out = self._drop_escapes(value, state, returns=False)
            if target.id in out:
                out = {k: v for k, v in out.items() if k != target.id}
            return out
        # Attribute / subscript / tuple stores: anything tracked flowing
        # into them escapes.
        return self._drop_escapes(value, state, returns=False)

    def _apply_calls(self, stmt, state, report):
        out = state
        for call in (n for n in ast.walk(stmt) if isinstance(n, ast.Call)):
            out = self._call(call, out, report)
        return out

    def _call(self, call: ast.Call, state, report):
        func = call.func
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            receiver = func.value.id
            verb = func.attr
            facts = state.get(receiver)
            if facts and any(verb == release for _s, _k, release, _l in facts):
                if report is not None:
                    for status, kind, release, line in facts:
                        if status == _RELEASED and verb == release:
                            report(
                                "double-release",
                                call.lineno,
                                f"{kind} (acquired on line {line}) may already "
                                f"be {release}d when {release}() runs again",
                            )
                out = dict(state)
                out[receiver] = frozenset(
                    (_RELEASED, kind, release, line) for _s, kind, release, line in facts
                )
                return out
            if facts is None and verb == "acquire" and not call.keywords:
                out = dict(state)
                out[receiver] = frozenset({(_HELD, "lock", "release", call.lineno)})
                return out
            if verb in _REGISTERS:
                tracked = [a.id for a in call.args if isinstance(a, ast.Name) and a.id in state]
                if tracked:
                    return {k: v for k, v in state.items() if k not in tracked}
        elif isinstance(func, (ast.Name, ast.Attribute)):
            last = func.id if isinstance(func, ast.Name) else func.attr
            if last[:1].isupper():  # constructor wrap takes ownership
                tracked = [a.id for a in call.args if isinstance(a, ast.Name) and a.id in state]
                if tracked:
                    return {k: v for k, v in state.items() if k not in tracked}
        return state

    def _drop_escapes(self, value: ast.expr, state, *, returns: bool):
        if not state:
            return state
        if returns or isinstance(value, (ast.Tuple, ast.List, ast.Set, ast.Dict, ast.Yield)):
            names = {n.id for n in ast.walk(value) if isinstance(n, ast.Name)}
            tracked = names & state.keys()
            if tracked:
                return {k: v for k, v in state.items() if k not in tracked}
        return state

    @staticmethod
    def _drop_bound(target, state):
        names = {n.id for n in ast.walk(target) if isinstance(n, ast.Name)}
        if not (names & state.keys()):
            return state
        return {k: v for k, v in state.items() if k not in names}


def _analyze_module(module) -> dict[str, list[Finding]]:
    """Run the resource analysis once per module; both rules read it."""
    cached = getattr(module, "_resource_findings", None)
    if cached is not None:
        return cached

    findings: dict[str, list[Finding]] = {"resource-leak": [], "double-release": []}
    reported: set[tuple[str, int, str]] = set()

    def report(rule_id: str, line: int, message: str) -> None:
        key = (rule_id, line, message)
        if key not in reported:
            reported.add(key)
            findings[rule_id].append(
                Finding(path=module.path, line=line, col=0, rule_id=rule_id, message=message)
            )

    analysis = _ResourceAnalysis(module)
    for graph in cfgs_for(module):
        if graph.node is None:
            continue  # module-level resources live as long as the process
        result = run_forward(graph.cfg, analysis)

        for block in graph.cfg.blocks:
            if block.id not in result.in_states:
                continue
            state = result.in_states[block.id]
            for element in block.elements:
                if isinstance(element, ast.stmt):
                    state = analysis._stmt(element, state, report)
                else:
                    state = analysis.transfer(element, state)

        exit_state = result.in_states.get(graph.cfg.exit)
        if exit_state:
            for facts in exit_state.values():
                for status, kind, release, line in sorted(facts, key=lambda f: f[3]):
                    if status == _HELD:
                        report(
                            "resource-leak",
                            line,
                            f"{kind} acquired here has a path to function exit "
                            f"without {release}()",
                        )

    module._resource_findings = findings
    return findings


@register
class ResourceLeakRule(Rule):
    id = "resource-leak"
    description = (
        "resource (SharedArray, pool, file, connection, lock) acquired with a "
        "path to function exit on which it is never released"
    )

    def check(self, module):
        yield from _analyze_module(module)["resource-leak"]


@register
class DoubleReleaseRule(Rule):
    id = "double-release"
    description = "release call that can run when the resource may already be released"

    def check(self, module):
        yield from _analyze_module(module)["double-release"]
