"""The physical-units abstract domain and the ``# unit:`` spec grammar.

MCBound's arithmetic is dimensioned: Eq. 1 divides Flops by
node-seconds into GFlops/s, Eq. 2 divides bytes into GB/s, Eq. 3 divides
the two rates into Flops/Byte and compares against the ridge point.  The
lattice here abstracts a numeric expression to its *dimension vector*
over the base dimensions ``flops``, ``bytes`` and ``seconds``:

* :data:`TOP` — unknown unit; absorbs everything, never reported on;
* :data:`POLY` — a bare numeric literal: unit-polymorphic, compatible
  with any unit under addition/comparison and an identity under
  multiplication (``perf3 * 4`` stays flops; ``x + 1e-9`` never warns);
* :class:`Unit` — a concrete dimension vector, e.g. GFlops/s is
  ``flops^1 * seconds^-1``.  SI magnitude prefixes (G/M/K/T, GiB...)
  are pure scale factors and carry no dimensional information, so
  ``gflops`` and ``flops`` are the *same* lattice point — the analysis
  checks dimensional consistency, not magnitudes.

Joins lose information monotonically: two different concrete units join
to :data:`TOP` (a branch-dependent unit is no longer trustworthy), POLY
joins into any concrete unit, and the lattice has height 2 — the
fixpoint converges fast and needs no widening.

The spec grammar accepted after ``# unit:`` is deliberately tiny::

    spec     := term ("/" term)* | "1"
    term     := name ("*" name)*
    name     := flops | bytes | seconds | aliases/prefixed forms

``flops/byte`` is intensity, ``gflops/s`` a compute rate, ``gb/s`` a
bandwidth, ``1`` an explicit dimensionless count or ratio.
"""

from __future__ import annotations

import io
import tokenize

__all__ = [
    "POLY",
    "TOP",
    "Unit",
    "add_result",
    "annotation_lines",
    "div",
    "incompatible",
    "join",
    "mul",
    "parse_spec",
    "power",
    "unit_name",
]


class _Top:
    """Unknown unit — every operation with it stays unknown."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "TOP"


class _Poly:
    """A unit-polymorphic scalar (numeric literal)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "POLY"


TOP = _Top()
POLY = _Poly()


class Unit:
    """A concrete dimension vector: sorted ``(base, exponent)`` pairs.

    The empty vector is *dimensionless* — a ratio like roofline
    efficiency, or an explicit ``# unit: 1`` count.  Instances are
    value-hashable so states built from them compare with ``==``.
    """

    __slots__ = ("dims",)

    def __init__(self, dims: dict[str, int] | tuple = ()):
        if isinstance(dims, dict):
            self.dims = tuple(sorted((b, e) for b, e in dims.items() if e != 0))
        else:
            self.dims = tuple(sorted((b, e) for b, e in dims if e != 0))

    def __eq__(self, other) -> bool:
        return isinstance(other, Unit) and self.dims == other.dims

    def __hash__(self) -> int:
        return hash(("Unit", self.dims))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Unit({unit_name(self)})"


DIMENSIONLESS = Unit()

#: Alias table: every accepted spelling -> base dimension (or "" for a
#: dimensionless count).  Magnitude prefixes are folded away on purpose.
_NAMES: dict[str, str] = {
    "1": "",
    "flop": "flops",
    "flops": "flops",
    "gflop": "flops",
    "gflops": "flops",
    "mflops": "flops",
    "tflops": "flops",
    "b": "bytes",
    "byte": "bytes",
    "bytes": "bytes",
    "kb": "bytes",
    "mb": "bytes",
    "gb": "bytes",
    "tb": "bytes",
    "gib": "bytes",
    "mib": "bytes",
    "s": "seconds",
    "sec": "seconds",
    "secs": "seconds",
    "second": "seconds",
    "seconds": "seconds",
}


def parse_spec(text: str) -> Unit | None:
    """Parse one unit spec (``gflops/s``, ``flops/byte``, ``1``) or None.

    An unknown name makes the whole spec unparsable — the caller treats
    the annotation as absent rather than guessing.  A spec never contains
    whitespace, so anything after the first space is trailing prose
    (``# unit: flops - FP_FIXED_OPS_SPEC``) and is ignored.
    """
    words = text.strip().lower().split()
    if not words:
        return None
    dims: dict[str, int] = {}
    segments = words[0].split("/")
    if not segments or not segments[0]:
        return None
    for position, segment in enumerate(segments):
        sign = 1 if position == 0 else -1
        for name in segment.split("*"):
            name = name.strip()
            if name not in _NAMES:
                return None
            base = _NAMES[name]
            if base:
                dims[base] = dims.get(base, 0) + sign
    return Unit(dims)


def unit_name(value) -> str:
    """Human-readable rendering for report messages."""
    if value is TOP:
        return "?"
    if value is POLY:
        return "scalar"
    if not value.dims:
        return "1 (dimensionless)"
    num = [f"{b}^{e}" if e > 1 else b for b, e in value.dims if e > 0]
    den = [f"{b}^{-e}" if e < -1 else b for b, e in value.dims if e < 0]
    text = "*".join(num) if num else "1"
    if den:
        text += "/" + "*".join(den)
    return text


# -- lattice operations ------------------------------------------------------


def join(a, b):
    """Least upper bound: agreement survives, conflict becomes TOP."""
    if a is b or a == b:
        return a
    if a is TOP or b is TOP:
        return TOP
    if a is POLY:
        return b
    if b is POLY:
        return a
    return TOP  # two different concrete units


def incompatible(a, b) -> bool:
    """True only when *both* sides are concrete units with different dims.

    TOP or POLY on either side means "cannot prove a mismatch", which is
    never a finding — the analysis only reports contradictions between
    two *known* dimensions.
    """
    return isinstance(a, Unit) and isinstance(b, Unit) and a.dims != b.dims


def add_result(a, b):
    """Result of ``a + b`` / ``a - b`` / ``min(a, b)``-style combination."""
    if incompatible(a, b):
        return TOP  # the mismatch is reported; keep analyzing soundly
    if isinstance(a, Unit) and (b is POLY or a == b):
        return a
    if isinstance(b, Unit) and a is POLY:
        return b
    if a is POLY and b is POLY:
        return POLY
    return TOP


def mul(a, b):
    """Result of ``a * b``: dimension vectors add; POLY is an identity."""
    if a is POLY:
        return b
    if b is POLY:
        return a
    if isinstance(a, Unit) and isinstance(b, Unit):
        dims = dict(a.dims)
        for base, exp in b.dims:
            dims[base] = dims.get(base, 0) + exp
        return Unit(dims)
    return TOP


def div(a, b):
    """Result of ``a / b``: dimension vectors subtract."""
    if b is POLY:
        return a
    if isinstance(a, Unit) and isinstance(b, Unit):
        dims = dict(a.dims)
        for base, exp in b.dims:
            dims[base] = dims.get(base, 0) - exp
        return Unit(dims)
    if a is POLY and isinstance(b, Unit):
        return Unit({base: -exp for base, exp in b.dims})
    return TOP


def power(a, exponent: int):
    """Result of ``a ** k`` for an integer literal ``k``."""
    if a is POLY or a is TOP:
        return a
    return Unit({base: exp * exponent for base, exp in a.dims})


# -- annotation harvesting ---------------------------------------------------


def annotation_lines(source: str) -> dict[int, str]:
    """Map line number -> raw text after ``# unit:`` for every annotation.

    Comments are found with :mod:`tokenize` (never by string search in
    code), so a ``# unit:`` inside a string literal is not an annotation.
    Unreadable source yields no annotations rather than an error — the
    engine reports syntax problems separately.
    """
    out: dict[int, str] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            text = tok.string.lstrip("#").strip()
            if text.lower().startswith("unit:"):
                out[tok.start[0]] = text[len("unit:") :].strip()
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return {}
    return out
