"""``unit-mismatch``: abstract interpretation over the physical-units lattice.

The rule runs a forward fixpoint per function CFG, mapping local
variables to points of :mod:`~repro.staticcheck.flow.unitlattice`, then
re-walks each *reachable* block with its converged in-state and reports
every arithmetic contradiction between two **known** dimensions:

* ``a + b`` / ``a - b`` where the operands carry different units
  (the classic ``perf4 + perf3`` counter mix-up);
* ``a < b`` comparisons across units (an intensity compared to a
  duration can never be meaningful);
* ``return`` of a value whose inferred unit contradicts the function's
  declared ``-> unit``;
* an assignment whose inferred unit contradicts the line's own
  ``# unit:`` annotation.

Units enter the analysis from *declared sources only*:

* ``# unit:`` annotations on ``def`` lines (``perf2=flops -> flops``),
  on module/class-level assignments, dataclass fields and properties
  (harvested cross-file through the import table, so
  ``Machine.peak_gflops`` typed in ``fugaku/machine.py`` seeds a use in
  ``roofline/characterize.py`` — the engine's dep-aware cache
  invalidation re-analyzes consumers when an annotation changes);
* ``time.perf_counter()`` and friends, which are always seconds.

Everything else is TOP and can never produce a finding: the rule is
silent on unannotated code by construction, so adopting it is free and
every report traces back to a declaration someone wrote down.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.staticcheck.findings import Finding
from repro.staticcheck.flow import cfgs_for
from repro.staticcheck.flow.cfg import ExceptBind, ForBind, FunctionGraph, Test, WithEnter, WithExit
from repro.staticcheck.flow.fixpoint import ForwardAnalysis, run_forward
from repro.staticcheck.flow.unitlattice import (
    POLY,
    TOP,
    Unit,
    add_result,
    annotation_lines,
    div,
    incompatible,
    join,
    mul,
    parse_spec,
    power,
    unit_name,
)
from repro.staticcheck.registry import Rule, register

__all__ = ["UnitMismatchRule"]

_SECONDS = Unit({"seconds": 1})

#: Stdlib clocks whose results are always seconds — no annotation needed.
_CLOCK_CALLS = {
    "time.perf_counter",
    "time.monotonic",
    "time.process_time",
    "time.thread_time",
    "time.time",
}

#: Single-argument callables transparent to units.
_PASSTHROUGH = {
    "abs",
    "float",
    "numpy.abs",
    "numpy.asarray",
    "numpy.array",
    "numpy.cumsum",
    "numpy.max",
    "numpy.mean",
    "numpy.median",
    "numpy.min",
    "numpy.nanmax",
    "numpy.nanmean",
    "numpy.nanmin",
    "numpy.nansum",
    "numpy.ravel",
    "numpy.sort",
    "numpy.sum",
}

#: Callables combining arguments additively (same-unit semantics).
_COMBINE = {"max", "min", "numpy.maximum", "numpy.minimum"}


def _parse_def_spec(text: str) -> tuple[dict[str, Unit], Unit | None]:
    """``perf2=flops, spec=1 -> flops`` -> (param units, return unit)."""
    params: dict[str, Unit] = {}
    if "->" in text:
        left, _, right = text.partition("->")
        ret = parse_spec(right)
    elif "=" not in text and "," not in text:
        return {}, parse_spec(text)  # bare spec on a def line = return unit
    else:
        left, ret = text, None
    for part in left.split(","):
        part = part.strip()
        if "=" in part:
            name, _, spec = part.partition("=")
            unit = parse_spec(spec)
            if unit is not None:
                params[name.strip()] = unit
    return params, ret


def _parse_value_spec(text: str) -> list[Unit | None]:
    """``flops, seconds, 1`` -> positional units for a (tuple) assignment."""
    return [parse_spec(part) for part in text.split(",")]


class _Harvest:
    """Unit declarations extracted from one module's source."""

    def __init__(self) -> None:
        self.functions: dict[str, tuple[dict[str, Unit], Unit | None, list[str]]] = {}
        self.methods: dict[str, tuple[dict[str, Unit], Unit | None, list[str]]] = {}
        self.attrs: dict[str, Unit | None] = {}
        self.names: dict[str, Unit] = {}

    def _merge_attr(self, name: str, unit: Unit) -> None:
        # Two classes declaring the same field name with different units
        # poison the (receiver-insensitive) attribute seed.
        if name in self.attrs and self.attrs[name] != unit:
            self.attrs[name] = None
        else:
            self.attrs[name] = unit


def _def_annotation(fn, annotations: dict[int, str]) -> str | None:
    first_body_line = fn.body[0].lineno if fn.body else fn.lineno + 1
    for line in range(fn.lineno, first_body_line):
        if line in annotations:
            return annotations[line]
    return None


def _stmt_annotation(stmt: ast.stmt, annotations: dict[int, str]) -> str | None:
    end = getattr(stmt, "end_lineno", None) or stmt.lineno
    for line in range(stmt.lineno, end + 1):
        if line in annotations:
            return annotations[line]
    return None


def _is_property(fn) -> bool:
    return any(
        (isinstance(d, ast.Name) and d.id == "property")
        or (isinstance(d, ast.Attribute) and d.attr in ("property", "cached_property"))
        for d in fn.decorator_list
    )


def harvest_module(tree: ast.Module, source: str) -> _Harvest:
    """Collect every declared unit in one parsed module."""
    annotations = annotation_lines(source)
    out = _Harvest()
    if not annotations:
        return out

    def visit_body(body: list[ast.stmt], *, in_class: bool) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                raw = _def_annotation(stmt, annotations)
                if raw is not None:
                    params, ret = _parse_def_spec(raw)
                    arg_names = [a.arg for a in stmt.args.args]
                    info = (params, ret, arg_names)
                    if in_class:
                        out.methods[stmt.name] = info
                        if _is_property(stmt) and ret is not None:
                            out._merge_attr(stmt.name, ret)
                    else:
                        out.functions[stmt.name] = info
                visit_body(stmt.body, in_class=False)
            elif isinstance(stmt, ast.ClassDef):
                visit_body(stmt.body, in_class=True)
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                raw = _stmt_annotation(stmt, annotations)
                if raw is None:
                    continue
                unit = parse_spec(raw)
                if unit is None:
                    continue
                targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                for target in targets:
                    if isinstance(target, ast.Name):
                        if in_class:
                            out._merge_attr(target.id, unit)
                        else:
                            out.names[target.id] = unit

    visit_body(tree.body, in_class=False)
    return out


# Per-process cross-file harvest memo.  Keyed by (path, mtime, size) so
# an edited dependency re-harvests within one process: the engine's warm
# cache re-analyzes dependents when only a ``# unit:`` line changed, and
# they must see the *new* annotations, not a stale memo entry.
_HARVEST_MEMO: dict[tuple[str, int, int], _Harvest] = {}


def _harvest_path(path: Path) -> _Harvest | None:
    try:
        stat = path.stat()
        key = (str(path), stat.st_mtime_ns, stat.st_size)
    except OSError:
        return _Harvest()
    if key in _HARVEST_MEMO:
        return _HARVEST_MEMO[key]
    try:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source)
    except (OSError, SyntaxError, ValueError):
        _HARVEST_MEMO[key] = _Harvest()
        return _HARVEST_MEMO[key]
    result = harvest_module(tree, source)
    _HARVEST_MEMO[key] = result
    return result


class _Environment:
    """All unit seeds visible to one module: local + imported declarations."""

    def __init__(self, module) -> None:
        self.module = module
        self.annotations = annotation_lines(module.source)
        local = harvest_module(module.tree, module.source)
        self.local = local
        # Fully-qualified callables: local functions by bare name plus
        # imported ones by resolved dotted name.
        self.functions = dict(local.functions)
        self.methods = dict(local.methods)
        self.attrs = dict(local.attrs)
        self.names = dict(local.names)
        self._harvest_imports()

    def _harvest_imports(self) -> None:
        module = self.module
        if not module.module_name:
            return  # bare-source checks have no filesystem to resolve against
        top = module.module_name.split(".")[0] + "."
        root = self._package_root()
        if root is None:
            return
        seen: set[str] = set()
        for origin in module.imports.values():
            if not origin.startswith(top):
                continue
            # ``from pkg.mod import sym`` resolves to pkg.mod.sym: try the
            # origin as a module and as a symbol inside its parent module.
            for dotted in (origin, origin.rpartition(".")[0]):
                if not dotted or dotted in seen:
                    continue
                seen.add(dotted)
                path = self._module_file(root, dotted)
                if path is None:
                    continue
                harvest = _harvest_path(path)
                if harvest is None:
                    continue
                for fn_name, info in harvest.functions.items():
                    self.functions[f"{dotted}.{fn_name}"] = info
                for method, info in harvest.methods.items():
                    self.methods.setdefault(method, info)
                for attr, unit in harvest.attrs.items():
                    if unit is None:
                        self.attrs[attr] = None
                    elif attr in self.attrs and self.attrs[attr] != unit:
                        self.attrs[attr] = None
                    else:
                        self.attrs[attr] = unit
                for name, unit in harvest.names.items():
                    self.names.setdefault(f"{dotted}.{name}", unit)

    def _package_root(self) -> Path | None:
        parts = self.module.module_name.split(".")
        path = Path(self.module.path).resolve().parent
        climb = len(parts) if self.module.is_package else len(parts) - 1
        for _ in range(climb):
            if path.parent == path:
                return None
            path = path.parent
        return path

    @staticmethod
    def _module_file(root: Path, dotted: str) -> Path | None:
        base = root.joinpath(*dotted.split("."))
        for candidate in (base.with_suffix(".py"), base / "__init__.py"):
            if candidate.is_file():
                return candidate
        return None


# -- the analysis ------------------------------------------------------------


class _UnitAnalysis(ForwardAnalysis):
    """Forward analysis: variable name -> lattice point (absent = TOP)."""

    def __init__(self, env: _Environment, fn_params: dict[str, Unit]):
        self.env = env
        self.fn_params = fn_params

    def initial(self):
        return dict(self.fn_params)

    def join(self, a, b):
        out = {}
        for name in a.keys() & b.keys():
            value = join(a[name], b[name])
            if value is not TOP:
                out[name] = value
        return out

    # -- expression evaluation (pure; ``report`` collects mismatches) ------

    def eval(self, expr: ast.expr, state: dict, report=None):
        if isinstance(expr, ast.Constant):
            return POLY if isinstance(expr.value, (int, float, complex)) else TOP
        if isinstance(expr, ast.Name):
            if expr.id in state:
                return state[expr.id]
            return self.env.names.get(expr.id, TOP)
        if isinstance(expr, ast.Attribute):
            self.eval(expr.value, state, report)
            dotted = self.env.module.dotted_name(expr)
            if dotted is not None and dotted in self.env.names:
                return self.env.names[dotted]
            unit = self.env.attrs.get(expr.attr)
            return unit if unit is not None else TOP
        if isinstance(expr, ast.BinOp):
            left = self.eval(expr.left, state, report)
            right = self.eval(expr.right, state, report)
            return self._binop(expr, expr.op, left, right, report)
        if isinstance(expr, ast.UnaryOp):
            value = self.eval(expr.operand, state, report)
            return value if isinstance(expr.op, (ast.UAdd, ast.USub)) else TOP
        if isinstance(expr, ast.Compare):
            left = self.eval(expr.left, state, report)
            for comparator in expr.comparators:
                right = self.eval(comparator, state, report)
                if report is not None and incompatible(left, right):
                    report(
                        comparator,
                        f"compares {unit_name(left)} against {unit_name(right)}",
                    )
                left = right
            return POLY
        if isinstance(expr, ast.Call):
            return self._call(expr, state, report)
        if isinstance(expr, ast.IfExp):
            self.eval(expr.test, state, report)
            return join(self.eval(expr.body, state, report), self.eval(expr.orelse, state, report))
        if isinstance(expr, ast.BoolOp):
            for value in expr.values:
                self.eval(value, state, report)
            return TOP
        if isinstance(expr, (ast.Tuple, ast.List)):
            for element in expr.elts:
                self.eval(element, state, report)
            return TOP
        if isinstance(expr, ast.Subscript):
            # Indexing preserves the container's unit (an array of flops
            # yields flops); the index itself is still visited.
            value = self.eval(expr.value, state, report)
            if not isinstance(expr.slice, (ast.Tuple, ast.Slice)):
                self.eval(expr.slice, state, report)
            return value
        if isinstance(expr, ast.Starred):
            return self.eval(expr.value, state, report)
        return TOP  # lambdas, comprehensions, f-strings, ... are opaque

    def _binop(self, node: ast.BinOp, op, left, right, report):
        if isinstance(op, (ast.Add, ast.Sub)):
            if report is not None and incompatible(left, right):
                verb = "adds" if isinstance(op, ast.Add) else "subtracts"
                report(node, f"{verb} {unit_name(left)} and {unit_name(right)}")
            return add_result(left, right)
        if isinstance(op, ast.Mult):
            return mul(left, right)
        if isinstance(op, (ast.Div, ast.FloorDiv)):
            return div(left, right)
        if isinstance(op, ast.Mod):
            if report is not None and incompatible(left, right):
                report(node, f"takes {unit_name(left)} modulo {unit_name(right)}")
            return add_result(left, right)
        if isinstance(op, ast.Pow):
            if isinstance(node.right, ast.Constant) and isinstance(node.right.value, int):
                return power(left, node.right.value)
            return TOP
        return TOP

    def _call(self, node: ast.Call, state: dict, report):
        args = [self.eval(arg, state, report) for arg in node.args]
        for keyword in node.keywords:
            self.eval(keyword.value, state, report)
        dotted = self.env.module.dotted_name(node.func)
        if dotted is None:
            # Chained calls (``np.where(...).astype(...)``): the callee
            # expression itself contains evaluable subexpressions.
            self.eval(node.func, state, report)
        if dotted is not None:
            if dotted in _CLOCK_CALLS:
                return _SECONDS
            if dotted in _PASSTHROUGH:
                return args[0] if args else TOP
            if dotted in _COMBINE:
                value = args[0] if args else TOP
                for index, arg in enumerate(args[1:], start=1):
                    if report is not None and incompatible(value, arg):
                        report(
                            node.args[index],
                            f"combines {unit_name(value)} with {unit_name(arg)}",
                        )
                    value = add_result(value, arg)
                return value
            if dotted == "numpy.divide" and len(args) >= 2:
                return div(args[0], args[1])
            info = self.env.functions.get(dotted)
            if info is not None:
                self._check_call_params(node, args, info, report, positional=True)
                return info[1] if info[1] is not None else TOP
        if isinstance(node.func, ast.Attribute):
            info = self.env.methods.get(node.func.attr)
            if info is not None:
                # Bound call: positional args shift by ``self``; only
                # keyword arguments are checked to stay precise.
                self._check_call_params(node, args, info, report, positional=False)
                return info[1] if info[1] is not None else TOP
        return TOP

    def _check_call_params(self, node, args, info, report, *, positional):
        if report is None:
            return
        params, _ret, arg_names = info
        if positional:
            for name, value, arg_node in zip(arg_names, args, node.args):
                declared = params.get(name)
                if declared is not None and incompatible(value, declared):
                    report(
                        arg_node,
                        f"passes {unit_name(value)} to parameter "
                        f"'{name}' declared {unit_name(declared)}",
                    )
        for keyword in node.keywords:
            declared = params.get(keyword.arg or "")
            if declared is not None:
                value = self.eval(keyword.value, {}, None)
                if incompatible(value, declared):
                    report(
                        keyword.value,
                        f"passes {unit_name(value)} to parameter "
                        f"'{keyword.arg}' declared {unit_name(declared)}",
                    )

    # -- transfer ----------------------------------------------------------

    def transfer(self, element, state):
        if isinstance(element, (Test, WithExit, ast.Return, ast.Expr, ast.Raise)):
            return state
        if isinstance(element, ForBind):
            return self._clear_targets(element.node.target, state)
        if isinstance(element, WithEnter):
            if element.item.optional_vars is not None:
                return self._clear_targets(element.item.optional_vars, state)
            return state
        if isinstance(element, ExceptBind):
            name = element.handler.name
            return self._without(state, name) if name else state
        if isinstance(element, ast.Assign):
            return self._assign(element, element.targets, element.value, state)
        if isinstance(element, ast.AnnAssign):
            if element.value is None:
                return state
            return self._assign(element, [element.target], element.value, state)
        if isinstance(element, ast.AugAssign):
            return self._aug_assign(element, state)
        return state

    def _assign(self, stmt, targets, value_expr, state):
        declared = self._declared_units(stmt)
        value = self.eval(value_expr, state, None)
        out = dict(state)
        for target in targets:
            if isinstance(target, ast.Name):
                unit = declared[0] if declared else value
                self._bind(out, target.id, unit)
            elif isinstance(target, (ast.Tuple, ast.List)):
                self._bind_tuple(target, value_expr, declared, state, out)
            # attribute/subscript stores leave locals untouched
        return out

    def _bind_tuple(self, target, value_expr, declared, state, out):
        elements = target.elts
        for index, element in enumerate(elements):
            if not isinstance(element, ast.Name):
                continue
            if declared and index < len(declared):
                self._bind(out, element.id, declared[index])
            elif isinstance(value_expr, ast.Tuple) and index < len(value_expr.elts):
                self._bind(out, element.id, self.eval(value_expr.elts[index], state, None))
            else:
                out.pop(element.id, None)

    def _aug_assign(self, stmt, state):
        if not isinstance(stmt.target, ast.Name):
            return state
        current = state.get(stmt.target.id, TOP)
        value = self.eval(stmt.value, state, None)
        result = self._binop(
            ast.BinOp(left=stmt.target, op=stmt.op, right=stmt.value), stmt.op, current, value, None
        )
        out = dict(state)
        self._bind(out, stmt.target.id, result)
        return out

    def _declared_units(self, stmt) -> list[Unit | None] | None:
        raw = _stmt_annotation(stmt, self.env.annotations)
        if raw is None:
            return None
        specs = _parse_value_spec(raw)
        return specs if any(s is not None for s in specs) else None

    @staticmethod
    def _bind(state: dict, name: str, unit) -> None:
        if unit is TOP or unit is None:
            state.pop(name, None)
        else:
            state[name] = unit

    def _clear_targets(self, target, state):
        names = [n.id for n in ast.walk(target) if isinstance(n, ast.Name)]
        if not any(name in state for name in names):
            return state
        out = dict(state)
        for name in names:
            out.pop(name, None)
        return out

    @staticmethod
    def _without(state: dict, name: str):
        if name not in state:
            return state
        out = dict(state)
        out.pop(name)
        return out


# -- the rule ----------------------------------------------------------------


@register
class UnitMismatchRule(Rule):
    id = "unit-mismatch"
    description = (
        "dimensioned arithmetic (flops/bytes/seconds) mixes incompatible units "
        "along some control-flow path"
    )

    def check(self, module):
        env = _Environment(module)
        reported: set[tuple[int, int, str]] = set()
        for graph in cfgs_for(module):
            yield from self._check_graph(module, env, graph, reported)

    def _check_graph(self, module, env: _Environment, graph: FunctionGraph, reported: set):
        fn_params: dict[str, Unit] = {}
        return_unit: Unit | None = None
        if graph.node is not None:
            raw = _def_annotation(graph.node, env.annotations)
            if raw is not None:
                fn_params, return_unit = _parse_def_spec(raw)
        analysis = _UnitAnalysis(env, fn_params)
        result = run_forward(graph.cfg, analysis)

        findings: list[Finding] = []

        def report(node, message):
            key = (node.lineno, node.col_offset, message)
            if key not in reported:
                reported.add(key)
                findings.append(self.finding(module, node, message))

        for block in graph.cfg.blocks:
            if block.id not in result.in_states:
                continue  # unreachable: no trustworthy state to judge with
            state = result.in_states[block.id]
            for element in block.elements:
                self._check_element(analysis, env, element, state, return_unit, report)
                state = analysis.transfer(element, state)
        yield from findings

    def _check_element(self, analysis, env, element, state, return_unit, report):
        if isinstance(element, Test):
            analysis.eval(element.expr, state, report)
            return
        if isinstance(element, (ForBind, WithExit, ExceptBind)):
            return
        if isinstance(element, WithEnter):
            analysis.eval(element.item.context_expr, state, report)
            return
        if isinstance(element, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested scopes get their own graphs
        if isinstance(element, ast.Return):
            if element.value is None:
                return
            value = analysis.eval(element.value, state, report)
            if return_unit is not None and incompatible(value, return_unit):
                report(
                    element,
                    f"returns {unit_name(value)} from a function declared "
                    f"-> {unit_name(return_unit)}",
                )
            return
        if isinstance(element, (ast.Assign, ast.AnnAssign)):
            value_expr = element.value
            if value_expr is None:
                return
            value = analysis.eval(value_expr, state, report)
            declared = analysis._declared_units(element)
            if declared and len(declared) == 1 and declared[0] is not None:
                if incompatible(value, declared[0]):
                    report(
                        element,
                        f"assigns {unit_name(value)} to a target annotated "
                        f"# unit: {unit_name(declared[0])}",
                    )
            return
        if isinstance(element, ast.AugAssign):
            current = state.get(element.target.id, TOP) if isinstance(
                element.target, ast.Name
            ) else TOP
            value = analysis.eval(element.value, state, report)
            if isinstance(element.op, (ast.Add, ast.Sub)) and incompatible(current, value):
                verb = "adds" if isinstance(element.op, ast.Add) else "subtracts"
                report(element, f"{verb} {unit_name(current)} and {unit_name(value)}")
            return
        if isinstance(element, ast.Expr):
            analysis.eval(element.value, state, report)
            return
        if isinstance(element, ast.Assert):
            analysis.eval(element.test, state, report)
            return
        for child in ast.iter_child_nodes(element):
            if isinstance(child, ast.expr):
                analysis.eval(child, state, report)
