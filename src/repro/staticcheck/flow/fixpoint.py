"""Generic forward-dataflow fixpoint over a :class:`~.cfg.CFG`.

An analysis supplies three things — an initial state for the entry
block, a ``join`` over states meeting at a block, and a ``transfer``
applying one CFG element to a state — and :func:`run_forward` iterates a
worklist until nothing changes.  *Unreached* is represented by absence
(a block with no computed in-state is bottom); joins therefore never
need an explicit bottom element, and unreachable blocks simply stay out
of the result maps, which is how report passes skip dead code.

States must be comparable with ``==`` and must be treated as immutable
by ``transfer`` (return a new state; never mutate the argument), since
convergence detection is equality of successive out-states.

Termination is the analysis's responsibility (finite-height lattice or
widening); a hard iteration cap proportional to the block count is kept
as a backstop so a buggy lattice degrades into a partial (still sound
for may-analyses' *reported-on-reachable* use) result instead of a hang.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.staticcheck.flow.cfg import CFG

__all__ = ["FlowResult", "ForwardAnalysis", "run_forward"]


class ForwardAnalysis:
    """Interface for forward analyses; subclass and override all three."""

    def initial(self):
        """State on entry to the CFG (e.g. parameter bindings)."""
        raise NotImplementedError

    def join(self, a, b):
        """Least upper bound of two states meeting at a block."""
        raise NotImplementedError

    def transfer(self, element, state):
        """State after ``element`` executes in ``state`` (pure function)."""
        raise NotImplementedError


@dataclass
class FlowResult:
    """Converged states: block id -> state; absent id = unreachable."""

    in_states: dict
    out_states: dict
    iterations: int

    def reached(self, block_id: int) -> bool:
        return block_id in self.in_states


def run_forward(cfg: CFG, analysis: ForwardAnalysis) -> FlowResult:
    """Worklist iteration to a fixpoint (or the safety cap)."""
    in_states: dict = {cfg.entry: analysis.initial()}
    out_states: dict = {}
    worklist: deque[int] = deque([cfg.entry])
    queued = {cfg.entry}
    blocks = {block.id: block for block in cfg.blocks}
    iterations = 0
    # Generous backstop: a finite-height lattice converges in
    # O(height * edges) visits; anything past this is a lattice bug.
    cap = 64 * len(cfg.blocks) + 256

    while worklist and iterations < cap:
        iterations += 1
        block_id = worklist.popleft()
        queued.discard(block_id)
        state = in_states[block_id]
        for element in blocks[block_id].elements:
            state = analysis.transfer(element, state)
        if block_id in out_states and out_states[block_id] == state:
            continue
        out_states[block_id] = state
        for succ in blocks[block_id].succs:
            if succ in in_states:
                joined = analysis.join(in_states[succ], state)
                if joined == in_states[succ]:
                    continue
                in_states[succ] = joined
            else:
                in_states[succ] = state
            if succ not in queued:
                worklist.append(succ)
                queued.add(succ)

    from repro.staticcheck import flow

    flow.COUNTERS["iterations"] += iterations
    return FlowResult(in_states=in_states, out_states=out_states, iterations=iterations)
