"""Control-flow graphs over function ASTs.

A :class:`CFG` is a set of basic blocks connected by directed edges.
Each block holds a list of *elements*: plain simple statements
(``ast.stmt``) plus lightweight pseudo-elements marking control actions
that transfer functions care about — branch-condition evaluation
(:class:`Test`), loop-target binding (:class:`ForBind`), context
entry/exit (:class:`WithEnter` / :class:`WithExit`) and exception
binding (:class:`ExceptBind`).  Compound statements never appear whole:
their headers become pseudo-elements and their bodies become blocks.

Modelled edges:

* ``if``/``while``/``for`` branch and back edges, including ``else``
  clauses on loops (taken only when the loop exits without ``break``);
* ``break`` / ``continue`` / ``return`` / ``raise``, each routed through
  every enclosing ``finally`` / ``with``-cleanup on the way out;
* exception edges — any element that can plausibly raise (it contains a
  call, a subscript or a division) ends its block with an edge to the
  innermost enclosing handler set, or to ``EXIT`` when unprotected.
  This is what lets a must-release analysis see the *exception path*
  out of a function, not just the happy path.

Deliberate approximations (all conservative for may/must analyses):

* a ``finally`` body is built once; every way of reaching it (normal
  completion, exception, early ``return``) merges at its entry, and its
  tail fans out to every demanded continuation;
* handler entry assumes a matching exception exists; a handler list
  containing a bare ``except`` / ``except (Base)Exception`` is assumed
  to catch everything (no bypass edge to outer frames);
* a may-raise element is isolated in its own block and the exception
  edge leaves *before* it — Python semantics: an assignment that raised
  never bound its target, so a handler must not see the post-state;
* cleanup calls (``x.close()`` / ``.release()`` / ``.shutdown()`` ...)
  are assumed to succeed — the standard must-release simplification,
  without which every ``finally: x.close()`` would carry its own
  exception path;
* comprehensions and lambdas are opaque expressions: their inner scopes
  bind nothing in the enclosing function (Python 3 scoping) and build no
  blocks.

Unreachable code (after ``return``, after ``while True`` without
``break``) still gets blocks — with no incoming edges, so a fixpoint
leaves them at bottom and report passes skip them.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = [
    "CFG",
    "Block",
    "ExceptBind",
    "ForBind",
    "FunctionGraph",
    "Test",
    "WithEnter",
    "WithExit",
    "build_cfg",
    "build_cfgs",
]


# -- pseudo-elements ---------------------------------------------------------


class Test:
    """Evaluation of a branch condition (``if``/``while`` test)."""

    __slots__ = ("expr", "node")

    def __init__(self, expr: ast.expr, node: ast.stmt):
        self.expr = expr
        self.node = node


class ForBind:
    """Loop header of a ``for``: evaluates ``iter`` and binds ``target``."""

    __slots__ = ("node",)

    def __init__(self, node: ast.For | ast.AsyncFor):
        self.node = node


class WithEnter:
    """One ``with`` item entered: context expression + optional ``as`` var."""

    __slots__ = ("item", "node")

    def __init__(self, item: ast.withitem, node: ast.stmt):
        self.item = item
        self.node = node


class WithExit:
    """One ``with`` item exited — runs on normal *and* exception paths."""

    __slots__ = ("item", "node")

    def __init__(self, item: ast.withitem, node: ast.stmt):
        self.item = item
        self.node = node


class ExceptBind:
    """Handler entry: the exception name (if any) becomes bound."""

    __slots__ = ("handler",)

    def __init__(self, handler: ast.ExceptHandler):
        self.handler = handler


# -- graph structure ---------------------------------------------------------


@dataclass
class Block:
    """One basic block: an element list plus successor block ids."""

    id: int
    elements: list = field(default_factory=list)
    succs: set[int] = field(default_factory=set)


@dataclass
class CFG:
    """Blocks plus distinguished entry/exit; preds derived on demand."""

    blocks: list[Block]
    entry: int
    exit: int

    def preds(self) -> dict[int, set[int]]:
        preds: dict[int, set[int]] = {b.id: set() for b in self.blocks}
        for block in self.blocks:
            for succ in block.succs:
                preds[succ].add(block.id)
        return preds


@dataclass
class FunctionGraph:
    """A CFG paired with the function it models (``node=None``: module)."""

    name: str
    qualname: str
    lineno: int
    node: ast.FunctionDef | ast.AsyncFunctionDef | None
    cfg: CFG


# -- construction frames -----------------------------------------------------


class _LoopFrame:
    __slots__ = ("continue_target", "break_target")

    def __init__(self, continue_target: int, break_target: int):
        self.continue_target = continue_target
        self.break_target = break_target


class _CleanupFrame:
    """A ``finally`` body or ``with``-exit that every departure crosses.

    ``demands`` records which abnormal continuations must leave the
    cleanup once it is finalized: ``("return",)``, ``("exc",)``,
    ``("break", loop_frame)`` or ``("continue", loop_frame)``.
    """

    __slots__ = ("entry", "demands")

    def __init__(self, entry: int):
        self.entry = entry
        self.demands: list = []


class _TryFrame:
    """The protected body of a ``try``: where its exceptions land."""

    __slots__ = ("handler_entries", "unmatched")

    def __init__(self, handler_entries: list[int], unmatched: bool):
        self.handler_entries = handler_entries
        #: True when no handler is guaranteed to match, so exceptions may
        #: also continue outward past the handler list.
        self.unmatched = unmatched


def _catches_everything(handlers: list[ast.ExceptHandler]) -> bool:
    for handler in handlers:
        if handler.type is None:
            return True
        types = handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
        for t in types:
            name = t.attr if isinstance(t, ast.Attribute) else getattr(t, "id", None)
            if name in ("Exception", "BaseException"):
                return True
    return False


def _expr_may_raise(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, (ast.Call, ast.Subscript, ast.Raise, ast.Assert)):
            return True
        if isinstance(sub, ast.BinOp) and isinstance(sub.op, (ast.Div, ast.FloorDiv, ast.Mod)):
            return True
    return False


#: Method names assumed not to raise: resource teardown verbs, plus the
#: registration verbs that hand a resource off to a container (without
#: this, ``pools.append(conn)`` would carry an exception edge out of the
#: block where ``conn`` is still held — a false leak on every handoff).
_CLEANUP_VERBS = {
    "add",
    "append",
    "appendleft",
    "cancel",
    "close",
    "disconnect",
    "join",
    "put",
    "put_nowait",
    "register",
    "release",
    "setdefault",
    "shutdown",
    "unlink",
}


def _is_cleanup_call(element) -> bool:
    return (
        isinstance(element, ast.Expr)
        and isinstance(element.value, ast.Call)
        and isinstance(element.value.func, ast.Attribute)
        and element.value.func.attr in _CLEANUP_VERBS
    )


def _may_raise(element) -> bool:
    """Whether an element plausibly raises (gets its own exception edge)."""
    if isinstance(element, (WithEnter, WithExit, ExceptBind)):
        return False  # their own failure modes are not worth extra edges
    if _is_cleanup_call(element):
        return False
    if isinstance(element, Test):
        return _expr_may_raise(element.expr)
    if isinstance(element, ForBind):
        return _expr_may_raise(element.node.iter)
    if isinstance(element, (ast.FunctionDef, ast.AsyncFunctionDef)):
        # Defining a function runs decorators and default expressions
        # only; the body does not execute here.
        parts = list(element.decorator_list) + element.args.defaults + [
            d for d in element.args.kw_defaults if d is not None
        ]
        return any(_expr_may_raise(p) for p in parts)
    return _expr_may_raise(element)


# -- builder -----------------------------------------------------------------


class _Builder:
    def __init__(self) -> None:
        self.blocks: list[Block] = []
        self.entry = self._new_block()
        self.exit = self._new_block()
        self.frames: list = []

    # -- plumbing ----------------------------------------------------------

    def _new_block(self) -> int:
        block = Block(id=len(self.blocks))
        self.blocks.append(block)
        return block.id

    def _edge(self, src: int, dst: int) -> None:
        self.blocks[src].succs.add(dst)

    def build(self, body: list[ast.stmt]) -> CFG:
        end = self._stmts(body, self.entry)
        if end is not None:
            self._edge(end, self.exit)
        from repro.staticcheck import flow

        flow.COUNTERS["cfgs"] += 1
        flow.COUNTERS["blocks"] += len(self.blocks)
        return CFG(blocks=self.blocks, entry=self.entry, exit=self.exit)

    # -- abnormal-exit routing ---------------------------------------------

    def _route(self, kind: tuple, src: int, *, frames: list | None = None) -> None:
        """Connect an abnormal departure to its target, crossing cleanups.

        ``kind`` is ``("return",)``, ``("exc",)``, ``("break", frame)`` or
        ``("continue", frame)``.  The walk stops at the first frame that
        intercepts the departure; cleanups intercept everything and
        re-emit it when they are finalized.
        """
        frames = self.frames if frames is None else frames
        for i in range(len(frames) - 1, -1, -1):
            frame = frames[i]
            if isinstance(frame, _CleanupFrame):
                self._edge(src, frame.entry)
                if kind not in frame.demands:
                    frame.demands.append(kind)
                return
            if isinstance(frame, _TryFrame) and kind[0] == "exc":
                for target in frame.handler_entries:
                    self._edge(src, target)
                if frame.unmatched:
                    # Keep looking outward for the next interceptor.
                    self._route(kind, src, frames=frames[:i])
                return
            if isinstance(frame, _LoopFrame) and kind[0] in ("break", "continue"):
                if frame is kind[1]:
                    target = (
                        frame.break_target if kind[0] == "break" else frame.continue_target
                    )
                    self._edge(src, target)
                    return
        self._edge(src, self.exit)

    def _nearest_loop(self) -> _LoopFrame | None:
        for frame in reversed(self.frames):
            if isinstance(frame, _LoopFrame):
                return frame
        return None

    # -- element emission --------------------------------------------------

    def _emit(self, element, current: int) -> int:
        """Append an element; isolate it when it may raise.

        The exception edge leaves the *preceding* block, so an analysis
        sees the pre-element state on the exception path (an assignment
        that raised never bound its target).
        """
        if _may_raise(element):
            self._route(("exc",), current)
            elem_block = self._new_block()
            self._edge(current, elem_block)
            self.blocks[elem_block].elements.append(element)
            nxt = self._new_block()
            self._edge(elem_block, nxt)
            return nxt
        self.blocks[current].elements.append(element)
        return current

    # -- statement dispatch ------------------------------------------------

    def _stmts(self, body: list[ast.stmt], current: int | None) -> int | None:
        for stmt in body:
            if current is None:
                # Unreachable code still gets (edge-less) blocks so the
                # builder never crashes on it; the fixpoint skips them.
                current = self._new_block()
            current = self._stmt(stmt, current)
        return current

    def _stmt(self, stmt: ast.stmt, current: int) -> int | None:
        if isinstance(stmt, ast.If):
            return self._if(stmt, current)
        if isinstance(stmt, ast.While):
            return self._while(stmt, current)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._for(stmt, current)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, current)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, current)
        if isinstance(stmt, ast.Return):
            current = self._emit(stmt, current)
            self._route(("return",), current)
            return None
        if isinstance(stmt, ast.Raise):
            self.blocks[current].elements.append(stmt)
            self._route(("exc",), current)
            return None
        if isinstance(stmt, ast.Break):
            loop = self._nearest_loop()
            if loop is not None:
                self._route(("break", loop), current)
            return None
        if isinstance(stmt, ast.Continue):
            loop = self._nearest_loop()
            if loop is not None:
                self._route(("continue", loop), current)
            return None
        # Nested defs/classes are opaque simple elements here; each nested
        # function gets its own FunctionGraph from build_cfgs.
        return self._emit(stmt, current)

    # -- compound statements -----------------------------------------------

    def _if(self, stmt: ast.If, current: int) -> int | None:
        current = self._emit(Test(stmt.test, stmt), current)
        then_entry = self._new_block()
        self._edge(current, then_entry)
        then_end = self._stmts(stmt.body, then_entry)
        if stmt.orelse:
            else_entry = self._new_block()
            self._edge(current, else_entry)
            else_end = self._stmts(stmt.orelse, else_entry)
        else:
            else_end = current  # falls straight through
        if then_end is None and else_end is None:
            return None
        after = self._new_block()
        for end in (then_end, else_end):
            if end is not None:
                self._edge(end, after)
        return after

    def _loop(self, stmt, back_target: int, branch: int, *, exits_normally: bool) -> int | None:
        """Shared body/else/back-edge wiring for ``while`` and ``for``.

        ``back_target`` is the block that re-evaluates the loop header (the
        continue target); ``branch`` is where the body/else edges leave.
        """
        after = self._new_block()
        frame = _LoopFrame(continue_target=back_target, break_target=after)
        self.frames.append(frame)
        body_entry = self._new_block()
        self._edge(branch, body_entry)
        body_end = self._stmts(stmt.body, body_entry)
        if body_end is not None:
            self._edge(body_end, back_target)  # back edge
        self.frames.pop()
        if exits_normally:
            # The ``else`` clause runs exactly when the loop exhausts
            # without ``break``; ``break`` jumps straight to ``after``.
            if stmt.orelse:
                else_entry = self._new_block()
                self._edge(branch, else_entry)
                else_end = self._stmts(stmt.orelse, else_entry)
                if else_end is not None:
                    self._edge(else_end, after)
            else:
                self._edge(branch, after)
        if not any(after in block.succs for block in self.blocks):
            return None  # e.g. while True with no break: nothing follows
        return after

    def _while(self, stmt: ast.While, current: int) -> int | None:
        back_target = self._new_block()
        self._edge(current, back_target)
        branch = self._emit(Test(stmt.test, stmt), back_target)
        always_true = isinstance(stmt.test, ast.Constant) and bool(stmt.test.value)
        return self._loop(stmt, back_target, branch, exits_normally=not always_true)

    def _for(self, stmt: ast.For | ast.AsyncFor, current: int) -> int | None:
        back_target = self._new_block()
        self._edge(current, back_target)
        branch = self._emit(ForBind(stmt), back_target)
        return self._loop(stmt, back_target, branch, exits_normally=True)

    def _with(self, stmt: ast.With | ast.AsyncWith, current: int) -> int | None:
        cleanup = _CleanupFrame(entry=self._new_block())
        for item in stmt.items:
            current = self._emit(WithEnter(item, stmt), current)
        for item in reversed(stmt.items):
            self.blocks[cleanup.entry].elements.append(WithExit(item, stmt))
        self.frames.append(cleanup)
        body_end = self._stmts(stmt.body, current)
        self.frames.pop()
        if body_end is not None:
            self._edge(body_end, cleanup.entry)
        return self._finalize_cleanup(
            cleanup, cleanup.entry, reachable_normally=body_end is not None
        )

    def _try(self, stmt: ast.Try, current: int) -> int | None:
        cleanup = _CleanupFrame(entry=self._new_block()) if stmt.finalbody else None
        if cleanup is not None:
            self.frames.append(cleanup)

        handler_entries = [self._new_block() for _ in stmt.handlers]
        try_frame = _TryFrame(
            handler_entries=list(handler_entries),
            unmatched=not _catches_everything(stmt.handlers),
        )
        self.frames.append(try_frame)
        body_entry = self._new_block()
        self._edge(current, body_entry)
        body_end = self._stmts(stmt.body, body_entry)
        self.frames.pop()  # handlers run outside the protected region

        if stmt.orelse and body_end is not None:
            body_end = self._stmts(stmt.orelse, body_end)

        ends: list[int] = []
        if body_end is not None:
            ends.append(body_end)
        for handler, entry in zip(stmt.handlers, handler_entries):
            handler_current = self._emit(ExceptBind(handler), entry)
            handler_end = self._stmts(handler.body, handler_current)
            if handler_end is not None:
                ends.append(handler_end)

        if cleanup is None:
            if not ends:
                return None
            after = self._new_block()
            for end in ends:
                self._edge(end, after)
            return after

        # Build the finally body once; everything merges at its entry.
        self.frames.pop()  # exceptions inside the finally propagate outward
        for end in ends:
            self._edge(end, cleanup.entry)
        finally_end = self._stmts(stmt.finalbody, cleanup.entry)
        if finally_end is None:
            return None  # the finally itself never completes
        return self._finalize_cleanup(cleanup, finally_end, reachable_normally=bool(ends))

    def _finalize_cleanup(
        self, cleanup: _CleanupFrame, tail: int, *, reachable_normally: bool
    ) -> int | None:
        """Fan the cleanup's tail out to every demanded continuation.

        Each abnormal demand is re-routed on the frame stack *without*
        this frame, so nested cleanups chain (inner finally -> outer
        finally -> exit).  The normal continuation exists only when some
        path reaches the cleanup by falling through.
        """
        for kind in cleanup.demands:
            self._route(kind, tail)
        if reachable_normally:
            after = self._new_block()
            self._edge(tail, after)
            return after
        return None


def build_cfg(body: list[ast.stmt]) -> CFG:
    """CFG for one statement list (a function body or a module body)."""
    return _Builder().build(body)


def _collect_functions(tree: ast.Module) -> list[tuple[str, ast.AST]]:
    out: list[tuple[str, ast.AST]] = []

    def walk(stmts: list[ast.stmt], qual: str) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                inner = f"{qual}.{stmt.name}" if qual else stmt.name
                out.append((inner, stmt))
                walk(stmt.body, inner)
            elif isinstance(stmt, ast.ClassDef):
                inner = f"{qual}.{stmt.name}" if qual else stmt.name
                walk(stmt.body, inner)
            else:
                for block in (
                    getattr(stmt, "body", None),
                    getattr(stmt, "orelse", None),
                    getattr(stmt, "finalbody", None),
                ):
                    if isinstance(block, list):
                        walk(block, qual)
                for handler in getattr(stmt, "handlers", []) or []:
                    walk(handler.body, qual)

    walk(tree.body, "")
    return out


def build_cfgs(tree: ast.Module) -> list[FunctionGraph]:
    """One graph for the module body plus one per (nested) function."""
    graphs = [
        FunctionGraph(
            name="<module>", qualname="<module>", lineno=1, node=None, cfg=build_cfg(tree.body)
        )
    ]
    for qualname, fn in _collect_functions(tree):
        graphs.append(
            FunctionGraph(
                name=fn.name,
                qualname=qualname,
                lineno=fn.lineno,
                node=fn,
                cfg=build_cfg(fn.body),
            )
        )
    return graphs
