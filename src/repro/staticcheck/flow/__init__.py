"""Flow-sensitive dataflow tier: CFG construction + fixpoint engine.

The flow-insensitive layers (single-file AST visitors, whole-program
summaries) cannot see *order*: a ``SharedArray`` acquired and then leaked
on an exception path, a variable that is GFlops/s on one branch and
GB/s on the other.  This package adds the missing tier:

* :mod:`repro.staticcheck.flow.cfg` — a control-flow-graph builder over
  function ASTs (branches, loops, ``try/except/finally``, ``with``,
  ``return/raise/break/continue`` edges);
* :mod:`repro.staticcheck.flow.fixpoint` — a generic forward-dataflow
  fixpoint engine (lattice join, worklist iteration, per-element
  transfer functions) that any rule can instantiate;
* :mod:`repro.staticcheck.flow.unitlattice` — the physical-units lattice
  (flops, bytes, seconds, rates and ratios thereof) plus the ``# unit:``
  annotation parser;
* :mod:`repro.staticcheck.flow.units` — the ``unit-mismatch`` rule:
  abstract interpretation of dimensioned arithmetic over the units
  lattice (the paper's Equations 1-5 are dimensioned formulas);
* :mod:`repro.staticcheck.flow.resources` — the ``resource-leak`` /
  ``double-release`` rules: a must-release path analysis for shared
  memory segments, executor pools, files and bare lock acquisitions.

Both rule families are ordinary single-file rules, so they run under the
incremental cache; a change to an annotated dependency re-analyzes its
dependents through the engine's dep-aware invalidation.

Work counters: :data:`COUNTERS` accumulates CFG/fixpoint effort for the
CLI's ``--statistics`` (snapshot-and-diff around each file analysis).
"""

from __future__ import annotations

from repro.staticcheck.flow.cfg import CFG, Block, FunctionGraph, build_cfgs
from repro.staticcheck.flow.fixpoint import ForwardAnalysis, FlowResult, run_forward

__all__ = [
    "CFG",
    "Block",
    "COUNTERS",
    "ForwardAnalysis",
    "FlowResult",
    "FunctionGraph",
    "build_cfgs",
    "cfgs_for",
    "run_forward",
    "snapshot_counters",
]

#: Process-wide effort counters, surfaced by ``--statistics``.
COUNTERS = {"cfgs": 0, "blocks": 0, "iterations": 0}


def snapshot_counters() -> dict:
    """Copy of the current counter values (diff against a later snapshot)."""
    return dict(COUNTERS)


def cfgs_for(module) -> list[FunctionGraph]:
    """CFGs for every function in ``module``, built once per ModuleContext.

    Both flow rules walk the same graphs; memoizing on the context object
    keeps the per-file cost at one CFG construction pass however many
    flow rules run.
    """
    cached = getattr(module, "_flow_cfgs", None)
    if cached is None:
        cached = build_cfgs(module.tree)
        module._flow_cfgs = cached
    return cached
