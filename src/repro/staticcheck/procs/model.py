"""Whole-program process model assembled from per-module procs facts.

The :class:`ProcessModel` answers the questions the five procs rules ask:

* where are the process boundaries, and what start method is in effect
  at each one (site ``get_context`` pin > module ``set_start_method`` >
  project-wide unique pin > unpinned, which on POSIX defaults to fork)?
* which functions run on the *worker side* of each boundary (the call
  graph closure of the spawn target, resolved through the PR 4
  :class:`~repro.staticcheck.project.concurrency.ConcurrencyModel`)?
* which locks and OS handles live at module/class scope — i.e. exist in
  the parent before the boundary and are silently duplicated into
  fork-children?
* which SharedArray segments are visible across the boundary (attached
  from elsewhere, or handed out through ``descriptor()``/raw argument)?

Soundness caveats are deliberate and documented in DESIGN §12: a
``Process(target=...)`` whose target is not a statically resolvable name
contributes no worker closure, and a ``parallel_map`` whose backend is
not a string literal is not a boundary at all.  The model is memoized on
the :class:`~repro.staticcheck.project.graph.ProjectContext` (like the
concurrency model), so the five rules share one construction per run.
"""

from __future__ import annotations

from repro.staticcheck.project.concurrency import ConcurrencyModel, _model_for

__all__ = ["ProcessModel", "Spawn", "process_model_for"]


class Spawn:
    """One process boundary, with its resolved worker-side closure."""

    def __init__(self, module: str, path: str, doc: dict):
        self.module = module
        self.path = path
        self.fn = doc["fn"]  # enclosing function qual ("" = module level)
        self.line = doc["line"]
        self.kind = doc["kind"]  # "process" | "executor" | "parallel-map"
        self.target = doc["target"]
        self.target_shape = doc["target_shape"]
        self.args = list(doc["args"])
        self.descriptor_of = list(doc["descriptor_of"])
        self.site_method = doc["method"]
        #: filled in by the model
        self.resolved_target: str | None = None
        self.closure: set[str] = set()

    @property
    def caller(self) -> str:
        return f"{self.module}.{self.fn}" if self.fn else self.module

    def describe(self) -> str:
        what = {
            "process": "Process(...)",
            "executor": "executor submit",
            "parallel-map": "parallel_map(backend='process')",
        }[self.kind]
        return f"{what} at {self.path}:{self.line}"


class ProcessModel:
    """Project-wide process-boundary tables shared by the procs rules."""

    def __init__(self, project) -> None:
        self.project = project
        self.cm: ConcurrencyModel = _model_for(project)
        #: module -> pinned start method (set_start_method literal)
        self.start_methods: dict[str, str] = {}
        self.spawns: list[Spawn] = []
        #: handle id -> (kind, path, line) from every module
        self.handles: dict[str, tuple[str, str, int]] = {}
        #: function full name -> spawns whose worker closure contains it
        self.worker_spawns: dict[str, list[Spawn]] = {}
        self._build()

    # -- assembly ----------------------------------------------------------

    def _build(self) -> None:
        for module in sorted(self.project.summaries):
            summary = self.project.summaries[module]
            facts = summary.procs or {}
            if facts.get("start_method"):
                self.start_methods[module] = facts["start_method"]
            for handle_id in sorted(facts.get("handles", {})):
                kind, line = facts["handles"][handle_id]
                self.handles.setdefault(handle_id, (kind, summary.path, line))
            for doc in facts.get("spawns", []):
                self.spawns.append(Spawn(module, summary.path, doc))
        for spawn in self.spawns:
            spawn.resolved_target = self._resolve_target(spawn)
            if spawn.resolved_target is not None:
                spawn.closure = self._closure_of(spawn.resolved_target)
                for full in spawn.closure:
                    self.worker_spawns.setdefault(full, []).append(spawn)

    def _resolve_target(self, spawn: Spawn) -> str | None:
        target = spawn.target
        if target is None:
            return None
        if spawn.fn:
            # A nested function is closure-scoped: known to the fact
            # tables under ``module.outer.inner`` but invisible to the
            # generic resolver (boundary-escape flags it separately).
            nested = f"{spawn.module}.{spawn.fn}.{target}"
            if nested in self.cm.known:
                return nested
            return self.cm.resolve_callee(target, spawn.caller, local_receiver=True)
        # Module-level spawn: replicate resolve_callee with home (module, "").
        if target.startswith("self."):
            return None
        if "." not in target:
            candidate = f"{spawn.module}.{target}"
            return candidate if candidate in self.cm.known else None
        resolved = self.project.resolve(target)
        if resolved is not None and resolved.qualname:
            candidate = f"{resolved.summary.module}.{resolved.qualname}"
            if candidate in self.cm.known:
                return candidate
        return None

    def _closure_of(self, root: str) -> set[str]:
        closure = {root}
        queue = [root]
        while queue:
            node = queue.pop()
            for succ in sorted(self.cm.edges.get(node, ())):
                if succ not in closure:
                    closure.add(succ)
                    queue.append(succ)
        return closure

    # -- start-method reasoning --------------------------------------------

    def effective_method(self, spawn: Spawn) -> str | None:
        """Start method in effect at a spawn site, or None when unpinned."""
        if spawn.site_method is not None:
            return spawn.site_method
        if spawn.module in self.start_methods:
            return self.start_methods[spawn.module]
        pins = set(self.start_methods.values())
        if len(pins) == 1:
            return next(iter(pins))
        return None

    def fork_possible(self, spawn: Spawn) -> bool:
        """Can this boundary inherit parent state by forking?

        Unpinned counts as fork-possible: fork is the POSIX default, and
        the serving fleet runs on Linux.
        """
        return self.effective_method(spawn) in (None, "fork")

    def pickles_across(self, spawn: Spawn) -> bool:
        """Does the target/argument payload cross via pickle?

        Pool-based boundaries always pickle their tasks; a raw ``Process``
        pickles only under spawn/forkserver (fork inherits by memory).
        """
        if spawn.kind in ("executor", "parallel-map"):
            return True
        return self.effective_method(spawn) in ("spawn", "forkserver")

    # -- scope classification ----------------------------------------------

    def _split_scope(self, object_id: str) -> tuple[str, str] | None:
        """(module, rest) for a lock/handle id, by longest module prefix."""
        parts = object_id.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:cut])
            if module in self.project.summaries:
                return module, ".".join(parts[cut:])
        return None

    def is_inheritable(self, object_id: str) -> bool:
        """Does this lock/handle exist in the parent before any spawn?

        True for module-level ids (``M.name``) and class-attribute ids
        (``M.Cls.attr``) — both are created at import/construction time
        and silently duplicated into fork children.  Function-local ids
        (``M.f.name``) are scoped to one call and skipped.
        """
        split = self._split_scope(object_id)
        if split is None:
            return False
        module, rest = split
        if "." not in rest:
            return True
        head, tail = rest.split(".", 1)
        if "." in tail:
            return False  # nested function scope
        sig = self.project.summaries[module].functions.get(head)
        return sig is not None and sig.kind == "class"

    def segment_table(self, module: str) -> dict:
        """``{qual: {name: [role, line]}}`` for one module (may be empty)."""
        return (self.project.summaries[module].procs or {}).get("segments", {})

    def segment_ops(self, module: str) -> list:
        return (self.project.summaries[module].procs or {}).get("segment_ops", [])


def process_model_for(project) -> ProcessModel:
    model = getattr(project, "_process_model", None)
    if model is None:
        model = ProcessModel(project)
        project._process_model = model
    return model
