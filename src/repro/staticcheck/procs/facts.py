"""Per-module process-boundary fact extraction.

One AST pass per module, producing the JSON-serializable ``procs`` table
on :class:`~repro.staticcheck.project.summary.ModuleSummary`:

``start_method``
    The literal argument of a module's ``multiprocessing.set_start_method``
    call, or ``None`` when the module never pins one.
``spawns``
    Every site that hands work to another *process*: a
    ``multiprocessing.Process(target=...)`` construction (including
    ``ctx.Process`` where ``ctx = multiprocessing.get_context("...")``
    pins the start method for that site), a ``submit``/``map`` on a
    ``ProcessPoolExecutor``, or a ``parallel_map``/``parallel_map_sharded``
    call whose config is *literally* ``ExecutorConfig(backend="process")``
    (directly or through a local variable).  A ``parallel_map`` whose
    backend is not statically a string literal is **not** recorded — a
    deliberate soundness caveat, like dynamic ``Process(target=f())``
    targets (see DESIGN §12).
``handles``
    Non-lock OS handles created at module, class-attribute or function
    scope: ``open(...)``, sockets, sqlite connections and SharedArray
    segments.  Lock facts already live in the ``concurrency`` table.
``segments`` / ``segment_ops``
    The :class:`~repro.parallel.sharedmem.SharedArray` lifecycle per
    function: which locals hold a segment (and whether this side *owns*
    it or merely attached), and every ``close``/``unlink``/array
    write/array read/``descriptor()`` hand-off on it, with the write
    sites tagged by whether they ran inside a ``StateGuard.writing()``
    block or under a held lock.

Everything is name-based and flow-insensitive within a function, exactly
like the concurrency walker the PR 4 rules are built on: ``with`` scopes
nest, and a local name keeps its role for the rest of the scope.
"""

from __future__ import annotations

import ast

from repro.staticcheck.procs import COUNTERS
from repro.staticcheck.project.summary import ModuleSummary, dotted_name

__all__ = [
    "HANDLE_FACTORIES",
    "PROCESS_FANOUT_BASENAMES",
    "SEGMENT_ROLES",
    "collect_procs_facts",
]

#: Dotted callees that return an OS handle the child must not inherit
#: blindly (plus the ``open`` builtin, matched by bare name).
HANDLE_FACTORIES = {
    "open": "open file handle",
    "socket.socket": "socket",
    "socket.create_connection": "socket",
    "sqlite3.connect": "sqlite connection",
}

#: ``SharedArray`` classmethod basename -> which side of the segment the
#: caller becomes.  Owners must ``unlink``; attachers must not.
SEGMENT_ROLES = {
    "create": "owner",
    "from_array": "owner",
    "attach": "attacher",
    "from_descriptor": "attacher",
}

#: repro.parallel fan-out entry points that cross a process boundary when
#: configured with the process backend.
PROCESS_FANOUT_BASENAMES = frozenset({"parallel_map", "parallel_map_sharded"})

#: Executor method names that ship a callable to the pool's workers.
_POOL_SUBMITS = frozenset({"submit", "map"})

_START_METHODS = frozenset({"fork", "spawn", "forkserver"})


def _basename(name: str) -> str:
    return name.rsplit(".", 1)[-1]


class _Scope:
    """Per-function mutable state (module level is the ``""`` scope)."""

    def __init__(self, qual: str, cls: str):
        self.qual = qual
        self.cls = cls
        #: local name -> start method pinned by ``get_context("...")``
        self.ctx_methods: dict[str, str] = {}
        #: local names bound to a ProcessPoolExecutor
        self.executors: set[str] = set()
        #: local name -> literal backend of an ExecutorConfig(...) value
        self.configs: dict[str, str] = {}
        #: local names bound to a SharedArray in this scope
        self.segments: set[str] = set()
        #: functions defined inside this (function) scope — closure-scoped,
        #: so they can never be pickled across a boundary
        self.nested_defs: set[str] = set()


class _ProcsWalker:
    """Single pass collecting the process-boundary facts of one module."""

    def __init__(self, summary: ModuleSummary):
        self.summary = summary
        self.imports = summary.imports
        self.module = summary.module
        self.facts: dict = {
            "start_method": None,
            "spawns": [],
            "handles": {},
            "segments": {},
            "segment_ops": [],
        }
        #: module-level segment names (visible from every function scope)
        self._module_segments: set[str] = set()

    def walk(self, tree: ast.Module) -> None:
        self._walk_body(tree.body, _Scope("", ""), writing=0, held=0)
        if (
            self.facts["spawns"]
            or self.facts["handles"]
            or self.facts["segments"]
            or self.facts["start_method"]
        ):
            self.summary.procs = self.facts

    # -- identity helpers --------------------------------------------------

    def _handle_id(self, name: str, scope: _Scope) -> str:
        if scope.qual:
            return f"{self.module}.{scope.qual}.{name}"
        return f"{self.module}.{name}"

    def _segment_scope_of(self, name: str, scope: _Scope) -> str | None:
        """Owning scope qual of a segment name visible here, or None."""
        if name in scope.segments:
            return scope.qual
        if name in self._module_segments:
            return ""
        return None

    def _segment_op(self, scope_qual: str, name: str, op: str, line: int, guarded: bool) -> None:
        self.facts["segment_ops"].append([scope_qual, name, op, line, guarded])

    # -- expression scan (load context) ------------------------------------

    def _scan_expr(self, expr: ast.AST, scope: _Scope, guarded: bool) -> None:
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                self._record_call(node, scope, guarded)
            elif isinstance(node, ast.Attribute) and node.attr == "array":
                if isinstance(node.value, ast.Name):
                    home = self._segment_scope_of(node.value.id, scope)
                    if home is not None:
                        self._segment_op(home, node.value.id, "read", node.lineno, guarded)

    def _record_call(self, call: ast.Call, scope: _Scope, guarded: bool) -> None:
        dotted = dotted_name(call.func, self.imports)
        if dotted is not None:
            base = _basename(dotted)
            if base == "set_start_method":
                literal = self._literal_str(call.args[0]) if call.args else None
                if literal in _START_METHODS and self.facts["start_method"] is None:
                    self.facts["start_method"] = literal
            elif dotted == "multiprocessing.Process" or (
                dotted.endswith(".Process") and dotted.split(".", 1)[0] in scope.ctx_methods
            ):
                method = scope.ctx_methods.get(dotted.split(".", 1)[0])
                self._record_spawn(call, scope, kind="process", method=method)
            elif base in PROCESS_FANOUT_BASENAMES and self._process_backend(call, scope):
                self._record_spawn(call, scope, kind="parallel-map", method=None)
        if (
            isinstance(call.func, ast.Attribute)
            and isinstance(call.func.value, ast.Name)
        ):
            receiver, attr = call.func.value.id, call.func.attr
            if attr in _POOL_SUBMITS and receiver in scope.executors:
                self._record_spawn(call, scope, kind="executor", method=None)
            elif attr in ("close", "unlink"):
                home = self._segment_scope_of(receiver, scope)
                if home is not None:
                    self._segment_op(home, receiver, attr, call.lineno, guarded)
            elif attr == "descriptor":
                home = self._segment_scope_of(receiver, scope)
                if home is not None:
                    self._segment_op(home, receiver, "pass", call.lineno, guarded)

    @staticmethod
    def _literal_str(node: ast.AST) -> str | None:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        return None

    def _process_backend(self, call: ast.Call, scope: _Scope) -> bool:
        """Does this fan-out call statically run on the process backend?"""
        for kw in call.keywords:
            if kw.arg != "config":
                continue
            if isinstance(kw.value, ast.Name):
                return scope.configs.get(kw.value.id) == "process"
            if isinstance(kw.value, ast.Call):
                return self._config_backend(kw.value) == "process"
        return False

    def _config_backend(self, call: ast.Call) -> str | None:
        name = dotted_name(call.func, self.imports)
        if name is None or _basename(name) != "ExecutorConfig":
            return None
        for kw in call.keywords:
            if kw.arg == "backend":
                return self._literal_str(kw.value)
        return None

    # -- spawn sites -------------------------------------------------------

    def _record_spawn(self, call: ast.Call, scope: _Scope, kind: str, method: str | None) -> None:
        target_expr: ast.AST | None = None
        boundary_args: list[ast.AST] = []
        if kind == "process":
            for kw in call.keywords:
                if kw.arg == "target":
                    target_expr = kw.value
                elif kw.arg == "args" and isinstance(kw.value, (ast.Tuple, ast.List)):
                    boundary_args.extend(kw.value.elts)
        elif kind == "executor":
            if call.args:
                target_expr = call.args[0]
            boundary_args.extend(call.args[1:])
        else:  # parallel-map: fn, items
            if call.args:
                target_expr = call.args[0]
            boundary_args.extend(call.args[1:2])

        target, shape = self._classify_target(target_expr, scope)
        spawn = {
            "fn": scope.qual,
            "line": call.lineno,
            "kind": kind,
            "target": target,
            "target_shape": shape,
            "args": [],
            "descriptor_of": [],
            "method": method,
        }
        for arg in boundary_args:
            if isinstance(arg, ast.Name):
                spawn["args"].append(arg.id)
            elif isinstance(arg, ast.Attribute):
                name = dotted_name(arg, self.imports)
                if name is not None:
                    spawn["args"].append(name)
            elif (
                isinstance(arg, ast.Call)
                and isinstance(arg.func, ast.Attribute)
                and arg.func.attr == "descriptor"
                and isinstance(arg.func.value, ast.Name)
            ):
                if self._segment_scope_of(arg.func.value.id, scope) is not None:
                    spawn["descriptor_of"].append(arg.func.value.id)
        self.facts["spawns"].append(spawn)
        COUNTERS["boundaries"] += 1

    def _classify_target(self, expr: ast.AST | None, scope: _Scope) -> tuple[str | None, str | None]:
        if expr is None:
            return None, None
        if isinstance(expr, ast.Lambda):
            return None, "lambda"
        if isinstance(expr, (ast.FunctionDef, ast.AsyncFunctionDef)):  # pragma: no cover
            return None, None
        if (
            isinstance(expr, ast.Call)
            and (name := dotted_name(expr.func, self.imports)) is not None
            and _basename(name) == "partial"
            and expr.args
        ):
            return self._classify_target(expr.args[0], scope)
        name = dotted_name(expr, self.imports)
        if name is None:
            return None, None
        if name == "self" or name.startswith("self."):
            return name, "self-method"
        if "." not in name and name in scope.nested_defs:
            return name, "nested"
        return name, "name"

    # -- creations (assignment right-hand sides) ---------------------------

    def _record_creation(self, stmt: ast.stmt, scope: _Scope) -> bool:
        """Handle/segment/context/config bindings; True when consumed."""
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            value = stmt.value
        else:
            return False
        if not isinstance(value, ast.Call):
            return False
        name = dotted_name(value.func, self.imports)
        if name is None:
            return False
        base = _basename(name)
        head = name.rsplit(".", 2)
        segment_role = (
            SEGMENT_ROLES.get(base)
            if len(head) >= 2 and _basename(head[-2]) == "SharedArray"
            else None
        )
        if segment_role is not None:
            for target in targets:
                if isinstance(target, ast.Name):
                    self._bind_segment(target.id, segment_role, stmt.lineno, scope)
            return True
        if name in HANDLE_FACTORIES:
            kind = HANDLE_FACTORIES[name]
            for target in targets:
                if isinstance(target, ast.Name):
                    self.facts["handles"].setdefault(
                        self._handle_id(target.id, scope), [kind, stmt.lineno]
                    )
                elif (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and scope.cls
                ):
                    self.facts["handles"].setdefault(
                        f"{self.module}.{scope.cls}.{target.attr}", [kind, stmt.lineno]
                    )
            return True
        if base == "get_context":
            literal = self._literal_str(value.args[0]) if value.args else None
            if literal in _START_METHODS:
                for target in targets:
                    if isinstance(target, ast.Name):
                        scope.ctx_methods[target.id] = literal
                return True
        if base == "ProcessPoolExecutor":
            for target in targets:
                if isinstance(target, ast.Name):
                    scope.executors.add(target.id)
            return True
        if base == "ExecutorConfig":
            backend = self._config_backend(value)
            if backend is not None:
                for target in targets:
                    if isinstance(target, ast.Name):
                        scope.configs[target.id] = backend
                return True
        return False

    def _bind_segment(self, name: str, role: str, line: int, scope: _Scope) -> None:
        per_scope = self.facts["segments"].setdefault(scope.qual, {})
        per_scope.setdefault(name, [role, line])
        if scope.qual:
            scope.segments.add(name)
        else:
            self._module_segments.add(name)
        self.facts["handles"].setdefault(
            self._handle_id(name, scope), [f"SharedArray segment ({role})", line]
        )
        COUNTERS["segments"] += 1

    # -- writes ------------------------------------------------------------

    def _record_target_writes(self, target: ast.AST, line: int, scope: _Scope, guarded: bool) -> None:
        for node in ast.walk(target):
            if (
                isinstance(node, ast.Subscript)
                and isinstance(node.value, ast.Attribute)
                and node.value.attr == "array"
                and isinstance(node.value.value, ast.Name)
            ):
                receiver = node.value.value.id
                home = self._segment_scope_of(receiver, scope)
                if home is not None:
                    self._segment_op(home, receiver, "write", line, guarded)

    # -- statements --------------------------------------------------------

    def _walk_body(self, body: list[ast.stmt], scope: _Scope, writing: int, held: int) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if scope.qual:
                    scope.nested_defs.add(stmt.name)
                inner_qual = f"{scope.qual}.{stmt.name}" if scope.qual else stmt.name
                inner = _Scope(inner_qual, scope.cls)
                for dec in stmt.decorator_list:
                    self._scan_expr(dec, scope, guarded=bool(writing or held))
                self._walk_body(stmt.body, inner, writing=0, held=0)
            elif isinstance(stmt, ast.ClassDef):
                inner_qual = f"{scope.qual}.{stmt.name}" if scope.qual else stmt.name
                inner = _Scope(inner_qual, stmt.name)
                for expr in stmt.bases + [kw.value for kw in stmt.keywords] + stmt.decorator_list:
                    self._scan_expr(expr, scope, guarded=bool(writing or held))
                self._walk_body(stmt.body, inner, writing, held)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                self._walk_with(stmt, scope, writing, held)
            elif isinstance(stmt, (ast.If, ast.While)):
                self._scan_expr(stmt.test, scope, guarded=bool(writing or held))
                self._walk_body(stmt.body, scope, writing, held)
                self._walk_body(stmt.orelse, scope, writing, held)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._scan_expr(stmt.iter, scope, guarded=bool(writing or held))
                self._walk_body(stmt.body, scope, writing, held)
                self._walk_body(stmt.orelse, scope, writing, held)
            elif isinstance(stmt, ast.Try):
                self._walk_body(stmt.body, scope, writing, held)
                for handler in stmt.handlers:
                    self._walk_body(handler.body, scope, writing, held)
                self._walk_body(stmt.orelse, scope, writing, held)
                self._walk_body(stmt.finalbody, scope, writing, held)
            else:
                self._walk_simple(stmt, scope, writing, held)

    def _walk_with(self, stmt: ast.With | ast.AsyncWith, scope: _Scope, writing: int, held: int) -> None:
        guarded = bool(writing or held)
        for item in stmt.items:
            self._scan_expr(item.context_expr, scope, guarded)
            expr = item.context_expr
            if (
                isinstance(expr, ast.Call)
                and isinstance(expr.func, ast.Attribute)
                and expr.func.attr == "writing"
            ):
                writing += 1
            elif isinstance(expr, (ast.Name, ast.Attribute)):
                # ``with lock:`` — but ``with seg:`` on a tracked segment
                # is lifecycle management, not mutual exclusion.
                is_segment = (
                    isinstance(expr, ast.Name)
                    and self._segment_scope_of(expr.id, scope) is not None
                )
                if not is_segment:
                    held += 1
            if item.optional_vars is not None and isinstance(item.optional_vars, ast.Name):
                # ``with SharedArray.create(...) as seg:`` / executor pools
                synthetic = ast.Assign(targets=[item.optional_vars], value=expr)
                ast.copy_location(synthetic, item.context_expr)
                self._record_creation(synthetic, scope)
        self._walk_body(stmt.body, scope, writing, held)

    def _walk_simple(self, stmt: ast.stmt, scope: _Scope, writing: int, held: int) -> None:
        guarded = bool(writing or held)
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            if stmt.value is not None:
                self._scan_expr(stmt.value, scope, guarded)
            targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            for target in targets:
                self._record_target_writes(target, stmt.lineno, scope, guarded)
                for node in ast.walk(target):
                    if isinstance(node, ast.Subscript):
                        self._scan_expr(node.slice, scope, guarded)
            if not isinstance(stmt, ast.AugAssign):
                self._record_creation(stmt, scope)
        else:
            self._scan_expr(stmt, scope, guarded)


def collect_procs_facts(summary: ModuleSummary, tree: ast.Module) -> None:
    """Populate ``summary.procs`` (left empty when the module is inert)."""
    _ProcsWalker(summary).walk(tree)
