"""Process-boundary rule family: what breaks when the code goes multi-process.

Five project rules over the shared :class:`ProcessModel` (spawn sites,
worker-side call-graph closures, start methods, inheritable locks and
handles, SharedArray lifecycles):

* ``fork-unsafe-inheritance`` — a lock or OS handle that exists in the
  parent before a fork-possible boundary is *used* by worker-side code;
  the child's copy shares no state with the parent (lock epochs vanish,
  buffered handles double-flush, sockets and sqlite connections are
  undefined to share).
* ``boundary-escape`` — a callable or argument crosses a boundary that
  pickling (or fork semantics) cannot carry safely: lambdas, nested
  closures, bound methods, locks, handles and raw SharedArray objects.
* ``sharedmem-protocol`` — a cross-process-visible SharedArray is
  written outside the ``StateGuard.writing()``/state-lock swap protocol,
  unlinked by a non-owning attacher, or used after ``unlink``.
* ``child-global-divergence`` — module-level state is written inside a
  worker-executed function; the write lands in the child's copy of the
  module and the parent never sees it.
* ``blocking-in-worker`` — retraining, I/O, nested fan-out or lock
  acquisition inside a function that is both worker-side and *hot* (PR
  7's entry-point/``# hotpath:`` derivation), stalling the serving pool.
"""

from __future__ import annotations

from typing import Iterator

from repro.staticcheck.findings import Finding
from repro.staticcheck.perf.hotpath import ENTRY_POINTS
from repro.staticcheck.procs.model import ProcessModel, Spawn, process_model_for
from repro.staticcheck.project.concurrency import (
    BLOCKING_CALLS,
    _BLOCKING_SUFFIXES,
    _FANOUT_BASENAMES,
    _RETRAIN_BASENAMES,
    _short,
)
from repro.staticcheck.registry import ProjectRule, register_project

__all__ = [
    "BlockingInWorkerRule",
    "BoundaryEscapeRule",
    "ChildGlobalDivergenceRule",
    "ForkUnsafeInheritanceRule",
    "SharedMemProtocolRule",
]


def _method_clause(model: ProcessModel, spawn: Spawn) -> str:
    method = model.effective_method(spawn)
    if method is None:
        return "the start method is unpinned (POSIX defaults to fork)"
    return f"under the '{method}' start method"


def _arg_candidates(model: ProcessModel, spawn: Spawn, arg: str) -> list[str]:
    """Project-wide identities an argument name may refer to at the site."""
    candidates: list[str] = []
    if arg.startswith("self."):
        _module, cls = model.cm.homes.get(spawn.caller, ("", ""))
        if cls:
            candidates.append(f"{spawn.module}.{cls}.{arg[5:]}")
        return candidates
    if spawn.fn:
        candidates.append(f"{spawn.module}.{spawn.fn}.{arg}")
    candidates.append(f"{spawn.module}.{arg}")
    return candidates


@register_project
class ForkUnsafeInheritanceRule(ProjectRule):
    id = "fork-unsafe-inheritance"
    description = (
        "a lock or OS handle created before a fork-possible process "
        "boundary is used by worker-side code; the forked copy shares no "
        "state with the parent"
    )

    def check(self, project) -> Iterator[Finding]:
        model = process_model_for(project)
        for spawn in model.spawns:
            if not model.fork_possible(spawn) or not spawn.closure:
                continue
            reported: set[str] = set()
            for full in sorted(spawn.closure):
                facts = model.cm.funcs.get(full, {})
                for lock, _line, _held in facts.get("acquires", []):
                    if (
                        lock in model.cm.locks
                        and model.is_inheritable(lock)
                        and lock not in reported
                    ):
                        reported.add(lock)
                        kind, lock_path, lock_line = model.cm.locks[lock]
                        yield self.finding(
                            spawn.path,
                            spawn.line,
                            f"worker-side '{full}' acquires {kind} "
                            f"'{_short(lock)}' (created at {lock_path}:"
                            f"{lock_line}) inherited across this process "
                            f"boundary; {_method_clause(model, spawn)}, so "
                            "the child gets a fork-copy whose state (holder, "
                            "sanitizer order graph) is divorced from the "
                            "parent's — create the lock inside the worker or "
                            "pin the 'spawn' start method",
                        )
                for handle in self._handles_used(model, full, facts):
                    if handle in reported:
                        continue
                    reported.add(handle)
                    kind, handle_path, handle_line = model.handles[handle]
                    yield self.finding(
                        spawn.path,
                        spawn.line,
                        f"worker-side '{full}' uses the {kind} "
                        f"'{_short(handle)}' (created at {handle_path}:"
                        f"{handle_line}) inherited across this process "
                        f"boundary; {_method_clause(model, spawn)}, so the "
                        "child inherits the parent's file descriptor — "
                        "buffered writes interleave and seek positions are "
                        "shared; open the handle inside the worker instead",
                    )

    @staticmethod
    def _handles_used(model: ProcessModel, full: str, facts: dict) -> list[str]:
        module, cls = model.cm.homes.get(full, ("", ""))
        used: list[str] = []
        for handle in sorted(model.handles):
            kind = model.handles[handle][0]
            if kind.startswith("SharedArray"):
                continue  # designed to cross the boundary; sharedmem-protocol owns it
            if not model.is_inheritable(handle):
                continue
            split = model._split_scope(handle)
            if split is None or split[0] != module:
                continue
            rest = split[1]
            if "." in rest:
                owner_cls, attr = rest.split(".", 1)
                if owner_cls != cls:
                    continue
                needle = f"self.{attr}"
            else:
                needle = rest
            for callee, _line, _held, _local in facts.get("calls", []):
                if callee == needle or callee.startswith(needle + "."):
                    used.append(handle)
                    break
        return used


@register_project
class BoundaryEscapeRule(ProjectRule):
    id = "boundary-escape"
    description = (
        "a callable or argument crosses a process boundary that pickling "
        "or fork semantics cannot carry safely (closures, bound methods, "
        "locks, handles, raw shared-memory objects)"
    )

    def check(self, project) -> Iterator[Finding]:
        model = process_model_for(project)
        for spawn in model.spawns:
            yield from self._check_target(model, spawn)
            yield from self._check_args(model, spawn)

    def _check_target(self, model: ProcessModel, spawn: Spawn) -> Iterator[Finding]:
        if not model.pickles_across(spawn):
            return
        if spawn.target_shape == "lambda":
            yield self.finding(
                spawn.path,
                spawn.line,
                "the task handed across this process boundary is a lambda; "
                "lambdas cannot be pickled, so the pool fails mid-run — "
                "define the task at module top level "
                "(ensure_picklable would reject object path '<lambda>')",
            )
        elif spawn.target_shape == "self-method":
            yield self.finding(
                spawn.path,
                spawn.line,
                f"the task '{spawn.target}' is a bound method; pickling it "
                "drags its whole instance (locks, caches, open handles) "
                "across the process boundary — pass a module-level function "
                f"plus plain data (object path '{spawn.target}.__self__')",
            )
        elif spawn.target_shape == "nested":
            yield self.finding(
                spawn.path,
                spawn.line,
                f"the task '{spawn.target}' is defined inside "
                f"'{spawn.fn}', so it closes over the enclosing frame and "
                "cannot be pickled across the process boundary — move it to "
                "module top level (ensure_picklable would reject object "
                f"path '{spawn.fn}.<locals>.{spawn.target}')",
            )

    def _check_args(self, model: ProcessModel, spawn: Spawn) -> Iterator[Finding]:
        for arg in spawn.args:
            for candidate in _arg_candidates(model, spawn, arg):
                if candidate in model.cm.locks:
                    kind, _path, _line = model.cm.locks[candidate]
                    yield self.finding(
                        spawn.path,
                        spawn.line,
                        f"{kind} '{_short(candidate)}' is passed as a "
                        "boundary argument (object path "
                        f"'{arg}'); a lock cannot synchronize across "
                        "processes — each side would lock a private copy; "
                        "use a multiprocessing primitive or redesign the "
                        "hand-off",
                    )
                    break
                if candidate in model.handles:
                    kind, _path, _line = model.handles[candidate]
                    if kind.startswith("SharedArray"):
                        yield self.finding(
                            spawn.path,
                            spawn.line,
                            f"SharedArray '{arg}' is passed raw across the "
                            "process boundary (object path "
                            f"'{arg}._shm'); the mapping does not survive "
                            "pickling — pass seg.descriptor() and attach in "
                            "the worker",
                        )
                    else:
                        yield self.finding(
                            spawn.path,
                            spawn.line,
                            f"{kind} '{_short(candidate)}' is passed as a "
                            f"boundary argument (object path '{arg}'); OS "
                            "handles cannot cross a process boundary by "
                            "value — open the resource inside the worker",
                        )
                    break


@register_project
class SharedMemProtocolRule(ProjectRule):
    id = "sharedmem-protocol"
    description = (
        "a cross-process SharedArray is written outside the "
        "StateGuard/state-lock swap protocol, unlinked by a non-owner, or "
        "used after unlink"
    )

    def check(self, project) -> Iterator[Finding]:
        model = process_model_for(project)
        for module in sorted(project.summaries):
            path = project.summaries[module].path
            table = model.segment_table(module)
            if not table:
                continue
            ops = model.segment_ops(module)
            crossing = self._crossing_segments(model, module, table)
            for qual in sorted(table):
                for name in sorted(table[qual]):
                    role, _line = table[qual][name]
                    seg_ops = sorted(
                        (op for op in ops if op[0] == qual and op[1] == name),
                        key=lambda op: op[3],
                    )
                    yield from self._check_segment(
                        path, module, qual, name, role, seg_ops,
                        visible=(qual, name) in crossing or role == "attacher",
                        worker_side=self._is_worker_side(model, module, qual),
                    )

    @staticmethod
    def _crossing_segments(model: ProcessModel, module: str, table: dict) -> set:
        """Segments handed across some boundary (raw or via descriptor)."""
        crossing: set[tuple[str, str]] = set()
        for qual, names in table.items():
            for op in model.segment_ops(module):
                if op[0] == qual and op[2] == "pass" and op[1] in names:
                    crossing.add((qual, op[1]))
        for spawn in model.spawns:
            if spawn.module != module:
                continue
            for arg in spawn.args + spawn.descriptor_of:
                if arg in table.get(spawn.fn, {}):
                    crossing.add((spawn.fn, arg))
                elif arg in table.get("", {}):
                    crossing.add(("", arg))
        return crossing

    @staticmethod
    def _is_worker_side(model: ProcessModel, module: str, qual: str) -> bool:
        return bool(qual) and f"{module}.{qual}" in model.worker_spawns

    def _check_segment(
        self,
        path: str,
        module: str,
        qual: str,
        name: str,
        role: str,
        seg_ops: list,
        visible: bool,
        worker_side: bool,
    ) -> Iterator[Finding]:
        where = f"'{qual}'" if qual else "module level"
        unlink_line: int | None = None
        for _qual, _name, op, line, guarded in seg_ops:
            if op == "unlink" and unlink_line is None:
                unlink_line = line
                if role == "attacher":
                    yield self.finding(
                        path,
                        line,
                        f"segment '{name}' was attached (not created) at "
                        f"{where}, but this side unlinks it; unlink is the "
                        "owner's responsibility — a sibling process may "
                        "still map the segment, and its next access raises "
                        "or reads freed memory",
                    )
                continue
            if unlink_line is not None and op in ("read", "write", "pass") and line > unlink_line:
                yield self.finding(
                    path,
                    line,
                    f"segment '{name}' is used after unlink (unlinked at "
                    f"{path}:{unlink_line}); the name is gone, so any "
                    "process attaching from here races the kernel's "
                    "teardown — unlink only after every user is done",
                )
                break  # one use-after-unlink per segment is enough signal
            if op == "write" and not guarded and (visible or worker_side):
                yield self.finding(
                    path,
                    line,
                    f"cross-process segment '{name}' is written at {where} "
                    "outside the StateGuard/state-lock swap protocol; "
                    "readers in sibling processes can observe the torn "
                    "intermediate state — wrap the write in "
                    "guard.writing() under the shared state lock",
                )


@register_project
class ChildGlobalDivergenceRule(ProjectRule):
    id = "child-global-divergence"
    description = (
        "module-level state is written inside a worker-executed function; "
        "the write lands in the child process and is invisible to the "
        "parent"
    )

    def check(self, project) -> Iterator[Finding]:
        model = process_model_for(project)
        for full in sorted(model.worker_spawns):
            facts = model.cm.funcs.get(full, {})
            spawn = model.worker_spawns[full][0]
            reported: set[str] = set()
            for target, line, _held in facts.get("writes", []):
                if target in reported or target in model.cm.locks:
                    continue
                split = model._split_scope(target)
                if split is None or "." in split[1]:
                    continue  # instance attribute or nested scope, not a module global
                reported.add(target)
                yield self.finding(
                    model.cm.paths[full],
                    line,
                    f"module-level '{split[1]}' is written inside "
                    f"'{full}', which runs in a worker process "
                    f"({spawn.describe()}); the write mutates the child's "
                    "copy of the module and the parent never observes it — "
                    "return the value to the parent or publish it through "
                    "shared memory",
                )


@register_project
class BlockingInWorkerRule(ProjectRule):
    id = "blocking-in-worker"
    description = (
        "retraining, I/O, nested fan-out or lock acquisition inside a hot "
        "worker-side function; one slow task stalls the whole serving pool"
    )

    def check(self, project) -> Iterator[Finding]:
        model = process_model_for(project)
        for full in sorted(model.worker_spawns):
            if not self._is_hot(model, full):
                continue
            facts = model.cm.funcs.get(full, {})
            path = model.cm.paths.get(full)
            if path is None:
                continue
            spawn = model.worker_spawns[full][0]
            for callee, line, _held, local_receiver in facts.get("calls", []):
                reason = self._blocking_reason(model, callee, full, local_receiver)
                if reason is None:
                    continue
                yield self.finding(
                    path,
                    line,
                    f"{reason} inside hot worker-side '{full}' "
                    f"({spawn.describe()} proves it runs on the worker "
                    "path); every task behind it in the pool queue stalls — "
                    "hoist the slow work to the parent or off the hot path",
                )
            for lock, line, _held in facts.get("acquires", []):
                if lock not in model.cm.locks:
                    continue
                kind, _lock_path, _lock_line = model.cm.locks[lock]
                yield self.finding(
                    path,
                    line,
                    f"hot worker-side '{full}' acquires {kind} "
                    f"'{_short(lock)}' ({spawn.describe()} proves it runs "
                    "on the worker path); contention serializes the pool — "
                    "keep the hot worker path lock-free and confine "
                    "synchronization to the parent",
                )

    @staticmethod
    def _is_hot(model: ProcessModel, full: str) -> bool:
        basename = full.rsplit(".", 1)[-1]
        if basename in ENTRY_POINTS:
            return True
        module, _cls = model.cm.homes.get(full, ("", ""))
        summary = model.project.summaries.get(module)
        if summary is None:
            return False
        qual = full[len(module) + 1 :] if module else full
        return qual in summary.hotpaths

    @staticmethod
    def _blocking_reason(model: ProcessModel, callee: str, caller: str, local_receiver: bool) -> str | None:
        basename = callee.rsplit(".", 1)[-1]
        if callee in BLOCKING_CALLS or callee == "open":
            return f"'{callee}' blocks on I/O or the clock"
        if callee.endswith(_BLOCKING_SUFFIXES):
            return f"'{callee}' performs file I/O"
        if basename in _FANOUT_BASENAMES:
            return f"'{basename}' fans out a nested pool"
        target = model.cm.resolve_callee(callee, caller, local_receiver)
        if target is not None and target.rsplit(".", 1)[-1] in _RETRAIN_BASENAMES:
            return f"'{callee}' (re)trains a model"
        return None
