"""Process-boundary tier: fork-safety, shared-memory protocol, escapes.

Every earlier tier (PR 2-5, PR 7) reasons within one process; this
package reasons about what happens *across* the fork/spawn boundary that
ROADMAP item 1's multi-worker serving path will introduce.  Three layers:

* :mod:`repro.staticcheck.procs.facts` — a per-module AST pass that
  records process *spawn sites* (``multiprocessing.Process``,
  ``ProcessPoolExecutor`` submit/map, ``parallel_map`` on the literal
  ``backend="process"``), start-method pins (``set_start_method`` /
  ``get_context``), non-lock handle creations (files, sockets, sqlite
  connections) and the full :class:`~repro.parallel.sharedmem.SharedArray`
  lifecycle (create/attach role, writes with guard context, close,
  unlink, descriptor hand-off).  The facts are JSON-serializable and live
  on :class:`~repro.staticcheck.project.summary.ModuleSummary` so the
  incremental cache serves them without re-parsing.
* :mod:`repro.staticcheck.procs.model` — the whole-program
  :class:`~repro.staticcheck.procs.model.ProcessModel`: spawn targets
  resolved through the PR 4 :class:`ConcurrencyModel` call graph, the
  worker-side closure of every boundary, effective start methods, and
  project-wide tables of inheritable locks/handles and shared segments.
* :mod:`repro.staticcheck.procs.rules` — the five project rules:
  ``fork-unsafe-inheritance``, ``boundary-escape``,
  ``sharedmem-protocol``, ``child-global-divergence`` and
  ``blocking-in-worker``.

Work counters: :data:`COUNTERS` accumulates fact-extraction effort for
the CLI's ``--statistics`` (snapshot-and-diff around each file analysis,
mirroring :data:`repro.staticcheck.flow.COUNTERS` and
:data:`repro.staticcheck.perf.COUNTERS`).
"""

from __future__ import annotations

__all__ = ["COUNTERS", "snapshot_counters"]

#: Process-wide effort counters, surfaced by ``--statistics``:
#: ``boundaries`` counts recorded process spawn sites, ``segments``
#: counts tracked SharedArray lifecycles.
COUNTERS = {"boundaries": 0, "segments": 0}


def snapshot_counters() -> dict:
    """Copy of the current counter values (diff against a later snapshot)."""
    return dict(COUNTERS)
