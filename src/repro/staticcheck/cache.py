"""Content-hash-keyed on-disk cache for the incremental engine.

One JSON document (default ``.staticcheck-cache.json``) maps each linted
file to its content hash, the hashes of its import-graph dependencies,
its single-file findings (active and suppressed) and its
:class:`~repro.staticcheck.project.summary.ModuleSummary`.  A warm entry
is served — no parse, no single-file rules — when

* the cache was written by the same schema and the same rule set
  (``fingerprint``), and
* the file's own hash matches, and
* every recorded dependency still exists in the scanned set with the
  recorded hash (a changed dependency conservatively re-analyzes its
  dependents, keeping dependency-sensitive facts honest).

Project rules always run — they are whole-program — but they consume the
cached summaries, so a warm run re-parses only what changed.  Reference
files (tests, benchmarks) are cached the same way, keyed on content hash
alone.  A corrupt or incompatible cache file is discarded silently: the
cache is an accelerator, never a source of truth.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

__all__ = ["AnalysisCache", "file_digest"]

# Schema history: 3 added module summaries + dep hashes; 4 added the
# flow-sensitive tier (per-file flow-work counters, and findings that
# depend on cross-file ``# unit:`` annotations — entries from schema 3
# would be silently missing those findings, so they must not be served);
# 5 added the perf tier (per-file perf-work counters and the summaries'
# ``hotpaths`` table — schema-4 summaries lack the ``# hotpath:`` facts
# the hot-path-gap rule reads, so they must not be served);
# 6 added the procs tier (per-file procs-work counters and the summaries'
# ``procs`` table — schema-5 summaries carry no process-boundary facts,
# so serving them would silence every procs rule on warm runs);
# 7 added the capacity tier (per-file capacity-work counters, cached
# capacity findings, and the summaries' ``capacity`` table — schema-6
# entries lack the streaming/return-scale/materializer facts the
# streaming-contract rule reads, so they must not be served);
# 8 added the sysmodel tier (per-file sysmodel-work counters and the
# summaries' ``sysmodel`` table — schema-7 entries lack the SystemModel
# hierarchy and flagged-constant facts the contract/leak/dispatch rules
# read, so they must not be served).
CACHE_SCHEMA = 8


def file_digest(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def rule_fingerprint(rule_ids: list[str], project_rule_ids: list[str]) -> str:
    payload = json.dumps(
        {"schema": CACHE_SCHEMA, "rules": sorted(rule_ids), "project": sorted(project_rule_ids)},
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


class AnalysisCache:
    """Load-mutate-save wrapper around the cache document."""

    def __init__(self, path: Path, fingerprint: str):
        self.path = Path(path)
        self.fingerprint = fingerprint
        self.files: dict[str, dict] = {}
        self.references: dict[str, dict] = {}
        self.hits = 0
        self.misses = 0

    @classmethod
    def load(cls, path: str | Path, fingerprint: str) -> "AnalysisCache":
        cache = cls(Path(path), fingerprint)
        try:
            doc = json.loads(cache.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return cache
        if not isinstance(doc, dict) or doc.get("schema") != CACHE_SCHEMA:
            return cache
        if doc.get("fingerprint") != fingerprint:
            # Different rule set (or engine schema): nothing is reusable.
            return cache
        files = doc.get("files")
        references = doc.get("references")
        if isinstance(files, dict):
            cache.files = files
        if isinstance(references, dict):
            cache.references = references
        return cache

    # -- lookups -----------------------------------------------------------

    def lookup(self, key: str, digest: str, current_digests: dict[str, str]) -> dict | None:
        """A valid entry for ``key``, or None; counts the hit/miss."""
        entry = self.files.get(key)
        if (
            isinstance(entry, dict)
            and entry.get("hash") == digest
            and all(
                current_digests.get(dep_path) == dep_hash
                for dep_path, dep_hash in entry.get("deps", {}).items()
            )
        ):
            self.hits += 1
            return entry
        self.misses += 1
        return None

    def lookup_reference(self, key: str, digest: str) -> dict | None:
        entry = self.references.get(key)
        if isinstance(entry, dict) and entry.get("hash") == digest:
            return entry
        return None

    # -- persistence -------------------------------------------------------

    def store(self, key: str, entry: dict) -> None:
        self.files[key] = entry

    def store_reference(self, key: str, entry: dict) -> None:
        self.references[key] = entry

    def save(self, *, keep_only: set[str] | None = None) -> None:
        """Write the cache, dropping entries for files no longer scanned."""
        files = self.files
        references = self.references
        if keep_only is not None:
            files = {k: v for k, v in files.items() if k in keep_only}
            references = {k: v for k, v in references.items() if k in keep_only}
        doc = {
            "schema": CACHE_SCHEMA,
            "fingerprint": self.fingerprint,
            "files": files,
            "references": references,
        }
        tmp = self.path.with_name(self.path.name + ".tmp")
        tmp.write_text(json.dumps(doc, sort_keys=True), encoding="utf-8")
        tmp.replace(self.path)
