"""``sysmodel-dimension``: declared machine literals vs roofline invariants.

A machine spec is a bundle of physical claims: peaks are positive, the
frequency ladder ascends, the knee is ``peak_flops / peak_bw``, and the
per-frequency knee ladder is monotone (a higher clock cannot lower the
attainable peak — the ``compute-budget-VS-bandwidth-budget`` invariant
behind :mod:`repro.roofline.multiceiling`).  The runtime validators in
:class:`repro.systems.spec.MachineSpec` enforce these when a spec is
*constructed*; this rule checks the declared **literals** statically, so
a bad synthetic-system declaration fails lint before any test imports
it.  Deliberately literal-anchored: computed values never fire.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.staticcheck.findings import Finding
from repro.staticcheck.registry import Rule, register
from repro.staticcheck.sysmodel import COUNTERS

__all__ = ["SysmodelDimensionRule"]

#: Relative tolerance for a declared ridge/knee vs peak_flops/peak_bw.
_RIDGE_RTOL = 1e-9


def _literal_number(node: ast.expr) -> float | None:
    """Numeric value of a literal (incl. unary minus), else None."""
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        inner = _literal_number(node.operand)
        if inner is None:
            return None
        return -inner if isinstance(node.op, ast.USub) else inner
    if isinstance(node, ast.Constant) and type(node.value) in (int, float):
        return float(node.value)
    return None


def _literal_tuple(node: ast.expr) -> list[float] | None:
    """Values of a flat literal tuple/list of numbers, else None."""
    if not isinstance(node, (ast.Tuple, ast.List)):
        return None
    values = [_literal_number(e) for e in node.elts]
    if any(v is None for v in values):
        return None
    return values  # type: ignore[return-value]


def _literal_pairs(node: ast.expr) -> list[tuple[float, float]] | None:
    """Values of a literal tuple of numeric pairs, else None."""
    if not isinstance(node, (ast.Tuple, ast.List)):
        return None
    pairs = []
    for e in node.elts:
        pair = _literal_tuple(e)
        if pair is None or len(pair) != 2:
            return None
        pairs.append((pair[0], pair[1]))
    return pairs


def _is_spec_callee(name: str | None) -> bool:
    return name is not None and name.rsplit(".", 1)[-1].endswith("Spec")


@register
class SysmodelDimensionRule(Rule):
    id = "sysmodel-dimension"
    description = (
        "a machine-spec or ceiling declaration violates a roofline "
        "invariant (non-positive peak, non-ascending frequencies, "
        "non-monotone knee ladder, or knee != peak_flops/peak_bw)"
    )

    def check(self, module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                callee = module.dotted_name(node.func)
                if _is_spec_callee(callee):
                    COUNTERS["spec_declarations"] += 1
                    fields = {
                        kw.arg: kw.value for kw in node.keywords if kw.arg is not None
                    }
                    yield from self._check_fields(module, fields)
                elif callee is not None and callee.rsplit(".", 1)[-1] == "Ceiling":
                    COUNTERS["spec_declarations"] += 1
                    yield from self._check_ceiling(module, node)
            elif isinstance(node, ast.ClassDef) and node.name.endswith("Spec"):
                COUNTERS["spec_declarations"] += 1
                fields = {
                    stmt.target.id: stmt.value
                    for stmt in node.body
                    if isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)
                    and stmt.value is not None
                }
                yield from self._check_fields(module, fields)

    def _check_ceiling(self, module, node: ast.Call) -> Iterator[Finding]:
        peak = None
        if len(node.args) >= 2:
            peak = _literal_number(node.args[1])
        for kw in node.keywords:
            if kw.arg == "peak_gbs":
                peak = _literal_number(kw.value)
        if peak is not None and peak <= 0:
            yield self.finding(
                module, node, "ceiling bandwidth must be a positive literal"
            )

    def _check_fields(self, module, fields: dict[str, ast.expr]) -> Iterator[Finding]:
        peaks: dict[str, float] = {}
        for name in sorted(fields):
            value = fields[name]
            if name.startswith("peak_"):
                number = _literal_number(value)
                if number is None:
                    continue
                peaks[name] = number
                if number <= 0:
                    yield self.finding(
                        module,
                        value,
                        f"declared peak '{name}' must be positive "
                        "(roofline ceilings are positive)",
                    )
            elif name == "frequencies_ghz":
                ladder = _literal_tuple(value)
                if ladder is not None and any(
                    b <= a for a, b in zip(ladder, ladder[1:])
                ):
                    yield self.finding(
                        module,
                        value,
                        "frequencies_ghz must be strictly ascending "
                        "(last entry is the boost mode)",
                    )
            elif name == "frequency_peaks":
                pairs = _literal_pairs(value)
                if pairs is None:
                    continue
                freqs = [f for f, _ in pairs]
                knees = [p for _, p in pairs]
                if any(b <= a for a, b in zip(freqs, freqs[1:])) or any(
                    b < a for a, b in zip(knees, knees[1:])
                ):
                    yield self.finding(
                        module,
                        value,
                        "multi-ceiling knees must be monotone in frequency: "
                        "a higher clock cannot lower the attainable peak",
                    )
                if any(p <= 0 for p in knees):
                    yield self.finding(
                        module, value, "per-frequency peaks must be positive"
                    )
        flops = [v for k, v in peaks.items() if "gflops" in k or "flops" in k]
        bandwidth = [v for k, v in peaks.items() if "membw" in k or "bw" in k]
        for name in ("ridge_point", "knee", "op_r"):
            declared = _literal_number(fields[name]) if name in fields else None
            if declared is None or len(flops) != 1 or len(bandwidth) != 1:
                continue
            if bandwidth[0] <= 0:
                continue
            expected = flops[0] / bandwidth[0]
            if abs(declared - expected) > _RIDGE_RTOL * max(abs(expected), 1.0):
                yield self.finding(
                    module,
                    fields[name],
                    f"declared '{name}' ({declared:g}) disagrees with "
                    f"peak_flops/peak_bw ({expected:g}); the knee is not a "
                    "free parameter",
                )
