"""System-model tier: contract analysis for physical-model plugins.

ROADMAP item 3 extracts the physical machine model behind the
:class:`repro.systems.base.SystemModel` abstraction.  Pulling formulas
behind an interface is exactly where silent unit bugs and
Fugaku-constant leaks creep in, so this tier guards the refactor:

* :mod:`repro.staticcheck.sysmodel.facts` — per-module facts on
  :class:`~repro.staticcheck.project.summary.ModuleSummary.sysmodel`
  (cache-served): the ``SystemModel`` class hierarchy with per-method
  signatures and ``# unit:`` def-window annotations, plus every
  occurrence of a known Fugaku machine constant.
* :mod:`repro.staticcheck.sysmodel.dimension` — the file-local
  ``sysmodel-dimension`` rule: declared machine literals must satisfy
  the roofline invariants (positive peaks, ascending frequency ladder,
  knee = peak_flops/peak_bw, multi-ceiling knees monotone in
  frequency).  Unknown never fires: only literals are checked.
* :mod:`repro.staticcheck.sysmodel.contract` + ``leaks.py`` — the
  cross-module rules: ``sysmodel-contract`` (every concrete system
  implements the full contract with matching signatures and ``-> unit``
  conventions, so the PR 5 unit fixpoint stays sound across the
  abstraction boundary), ``system-constant-leak`` (Fugaku magic numbers
  outside the Fugaku model modules) and ``system-dispatch`` (call sites
  bypassing the registry).

Work counters: :data:`COUNTERS` accumulates analysis effort for the
CLI's ``--statistics`` (snapshot-and-diff around each file analysis,
mirroring the flow/perf/procs/capacity tiers).
"""

from __future__ import annotations

__all__ = ["COUNTERS", "snapshot_counters"]

#: Process-wide effort counters, surfaced by ``--statistics``:
#: ``contract_classes`` counts SystemModel-hierarchy classes harvested
#: during fact extraction, ``spec_declarations`` counts machine-spec /
#: ceiling declaration sites checked by ``sysmodel-dimension``.
COUNTERS = {"contract_classes": 0, "spec_declarations": 0}


def snapshot_counters() -> dict:
    """Copy of the current counter values (diff against a later snapshot)."""
    return dict(COUNTERS)
