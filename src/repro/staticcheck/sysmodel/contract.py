"""The cross-module ``sysmodel-contract`` project rule.

The :class:`repro.systems.base.SystemModel` ABC is the unit-soundness
boundary of the system refactor: the PR 5 flops/bytes/seconds fixpoint
harvests ``# unit:`` method annotations by bare name, so a concrete
system whose ``flops_from_counters`` is missing, takes different
parameters, or silently drops the ``-> flops`` convention would poison
every consumer of the abstraction.  This rule walks the cache-served
sysmodel facts, reconstructs the SystemModel hierarchy across modules,
and holds every concrete subclass to the full contract:

* every abstract contract member is implemented (directly or through an
  intermediate ancestor — the root's own abstract defs never count);
* implementation signatures match the contract (positional and
  keyword-only parameter names, ``*args``/``**kwargs`` presence, and
  property-ness; defaults are free);
* when the contract member declares a ``# unit:`` def annotation, the
  implementation repeats it verbatim (whitespace-normalized), so the
  unit harvest sees one consistent convention per method name.
"""

from __future__ import annotations

from typing import Iterator

from repro.staticcheck.findings import Finding
from repro.staticcheck.registry import ProjectRule, register_project

__all__ = ["SysmodelContractRule", "system_class_graph"]


def system_class_graph(project) -> tuple[dict, dict]:
    """Resolve the SystemModel hierarchy across all module summaries.

    Returns ``(roots, hierarchy)``: ``roots`` maps the full name of each
    class literally named ``SystemModel`` to ``(module, info)``;
    ``hierarchy`` maps the full name of every class transitively derived
    from a root to ``(module, class_name, info, parents)`` where
    ``parents`` lists full names of its in-hierarchy bases.  Base names
    are matched by bare last component (the summaries record them as
    written at the ``class`` statement), iterated to a fixpoint so
    intermediate layers in other modules resolve too.
    """
    by_name: dict[str, list[tuple[str, dict]]] = {}
    for module in sorted(project.summaries):
        sysmodel = getattr(project.summaries[module], "sysmodel", {}) or {}
        for cname, info in sysmodel.get("classes", {}).items():
            by_name.setdefault(cname, []).append((module, info))

    roots = {
        f"{module}.{cname}": (module, info)
        for cname, entries in by_name.items()
        if cname == "SystemModel"
        for module, info in entries
    }

    in_hierarchy = {"SystemModel"}
    hierarchy: dict[str, tuple] = {}
    changed = True
    while changed:
        changed = False
        for cname, entries in by_name.items():
            if cname == "SystemModel" or cname in in_hierarchy:
                continue
            for module, info in entries:
                bare_bases = [b.rsplit(".", 1)[-1] for b in info["bases"]]
                if any(b in in_hierarchy for b in bare_bases):
                    in_hierarchy.add(cname)
                    changed = True
    for cname in sorted(in_hierarchy - {"SystemModel"}):
        for module, info in by_name.get(cname, []):
            bare_bases = [b.rsplit(".", 1)[-1] for b in info["bases"]]
            parents = []
            for bare in bare_bases:
                if bare == "SystemModel":
                    parents.extend(sorted(roots))
                elif bare in in_hierarchy:
                    parents.extend(
                        f"{m}.{bare}" for m, _ in by_name.get(bare, [])
                    )
            hierarchy[f"{module}.{cname}"] = (module, cname, info, parents)
    return roots, hierarchy


def _inherited_methods(full: str, hierarchy: dict) -> dict:
    """Concrete method infos visible on ``full``, nearest ancestor wins."""
    merged: dict = {}
    stack = [full]
    seen = set()
    while stack:
        current = stack.pop(0)
        if current in seen or current not in hierarchy:
            continue
        seen.add(current)
        _module, _cname, info, parents = hierarchy[current]
        for name, method in info["methods"].items():
            if not method["is_abstract"] and name not in merged:
                merged[name] = method
        stack.extend(parents)
    return merged


@register_project
class SysmodelContractRule(ProjectRule):
    id = "sysmodel-contract"
    description = (
        "a concrete SystemModel subclass misses a contract member, "
        "changes its signature, or drops its # unit: return convention"
    )

    def check(self, project) -> Iterator[Finding]:
        roots, hierarchy = system_class_graph(project)
        contract: dict = {}
        for _root, (_module, info) in sorted(roots.items()):
            for name, method in info["methods"].items():
                if method["is_abstract"]:
                    contract.setdefault(name, method)
        if not contract:
            return

        for full in sorted(hierarchy):
            module, cname, info, _parents = hierarchy[full]
            if info["abstract"]:
                continue
            path = project.summaries[module].path
            implemented = _inherited_methods(full, hierarchy)
            for name in sorted(contract):
                spec = contract[name]
                impl = implemented.get(name)
                if impl is None:
                    yield self.finding(
                        path,
                        info["line"],
                        f"'{cname}' does not implement SystemModel contract "
                        f"member '{name}'",
                    )
                    continue
                mismatches = []
                if impl["args"] != spec["args"]:
                    mismatches.append(
                        f"positional parameters {impl['args']} != {spec['args']}"
                    )
                if impl["kwonly"] != spec["kwonly"]:
                    mismatches.append(
                        f"keyword-only parameters {impl['kwonly']} != {spec['kwonly']}"
                    )
                if impl["vararg"] != spec["vararg"] or impl["kwarg"] != spec["kwarg"]:
                    mismatches.append("*args/**kwargs presence differs")
                if impl["is_property"] != spec["is_property"]:
                    mismatches.append(
                        "property-ness differs from the contract"
                    )
                for mismatch in mismatches:
                    yield self.finding(
                        path,
                        impl["line"],
                        f"'{cname}.{name}' does not match the SystemModel "
                        f"contract: {mismatch}",
                    )
                if spec["unit"] is not None and impl["unit"] != spec["unit"]:
                    yield self.finding(
                        path,
                        impl["line"],
                        f"'{cname}.{name}' must repeat the contract's unit "
                        f"annotation '# unit: {spec['unit']}' so the unit "
                        "fixpoint stays sound across the abstraction "
                        f"boundary (found: {impl['unit'] or 'none'})",
                    )
