"""``system-constant-leak`` and ``system-dispatch``: keeping Fugaku in its box.

The whole point of the system refactor is that nothing outside the
Fugaku model modules knows Fugaku's numbers.  Two cross-module rules
hold that line:

* ``system-constant-leak`` — any occurrence of a known Fugaku machine
  constant (Table I peaks, A64FX counter names, 2.2e9-style clock
  literals; see :data:`repro.staticcheck.sysmodel.facts.FLAGGED_FLOATS`)
  outside the modules that *define* the Fugaku model.  A leaked
  ``3380.0`` works until the first non-Fugaku deployment, then silently
  misclassifies every job.
* ``system-dispatch`` — a call site that names a concrete system class
  directly instead of resolving it through
  :func:`repro.systems.registry.get_system`.  Bypassing the registry
  re-hardwires the very coupling the abstraction removed.
"""

from __future__ import annotations

from typing import Iterator

from repro.staticcheck.findings import Finding
from repro.staticcheck.registry import ProjectRule, register_project
from repro.staticcheck.sysmodel.contract import system_class_graph

__all__ = ["SystemConstantLeakRule", "SystemDispatchRule"]

#: Modules allowed to spell Fugaku constants: the two defining modules,
#: the registry adapter that documents them, and the fact extractor
#: that must list them to find them anywhere else.
_ALLOWED_MODULES = frozenset(
    {
        "repro.fugaku.system",
        "repro.fugaku.counters",
        "repro.systems.fugaku",
        "repro.staticcheck.sysmodel.facts",
    }
)


@register_project
class SystemConstantLeakRule(ProjectRule):
    id = "system-constant-leak"
    description = (
        "a Fugaku machine constant (Table I peak, A64FX counter name, "
        "clock literal) is spelled outside the Fugaku model modules"
    )

    def check(self, project) -> Iterator[Finding]:
        for module in sorted(project.summaries):
            if module in _ALLOWED_MODULES:
                continue
            summary = project.summaries[module]
            sysmodel = getattr(summary, "sysmodel", {}) or {}
            for entry in sysmodel.get("constants", []):
                yield self.finding(
                    summary.path,
                    entry["line"],
                    f"Fugaku machine constant {entry['value']} referenced "
                    "outside the Fugaku system model; take it from the "
                    "system registry (repro.systems.get_system) instead",
                )


@register_project
class SystemDispatchRule(ProjectRule):
    id = "system-dispatch"
    description = (
        "a call site constructs a concrete system class directly, "
        "bypassing the repro.systems registry"
    )

    def check(self, project) -> Iterator[Finding]:
        _roots, hierarchy = system_class_graph(project)
        homes: dict[str, set] = {}
        for _full, (module, cname, info, _parents) in hierarchy.items():
            if not info["abstract"]:
                homes.setdefault(cname, set()).add(module)
        if not homes:
            return

        for module in sorted(project.summaries):
            # The registry itself instantiates by design.
            if module.rsplit(".", 1)[-1] == "registry":
                continue
            summary = project.summaries[module]
            witnesses: dict[str, int] = {}
            for call in summary.calls:
                bare = call["callee"].rsplit(".", 1)[-1]
                if bare in homes and module not in homes[bare]:
                    if bare not in witnesses or call["line"] < witnesses[bare]:
                        witnesses[bare] = call["line"]
            for bare in sorted(witnesses):
                yield self.finding(
                    summary.path,
                    witnesses[bare],
                    f"direct construction of system '{bare}' bypasses "
                    "the registry; resolve it via repro.systems.get_system(...)",
                )
