"""Per-module system-model facts for the cross-module contract rules.

Extracted once per cold file during summary building and serialized on
:class:`~repro.staticcheck.project.summary.ModuleSummary.sysmodel`, so
the incremental cache serves them without re-parsing.  Two tables:

* ``classes`` — every class in a module that mentions ``SystemModel``:
  base names plus per-method signatures, decorator flags and the raw
  ``# unit:`` def-window annotation, for the ``sysmodel-contract``
  conformance check through the ABC.
* ``constants`` — occurrences of known Fugaku machine constants
  (Table I peaks, the A64FX counter names, 2.2e9-style clock literals),
  for the ``system-constant-leak`` rule.  Matching is exact-literal
  equality, so a docstring *mentioning* a counter name (one long string
  constant) or an unrelated integer ``1024`` never matches the float
  ``1024.0``.

Modules with neither contribute nothing — their summaries stay exactly
as small as before this tier existed.
"""

from __future__ import annotations

import ast

from repro.staticcheck.capacity.dataflow import def_window_annotation
from repro.staticcheck.perf.arrays import tagged_comments
from repro.staticcheck.sysmodel import COUNTERS

__all__ = ["collect_sysmodel_facts", "FLAGGED_FLOATS", "FLAGGED_INTS", "FLAGGED_NAMES"]

#: Fugaku machine constants (Table I + A64FX clocks) that must not leak
#: outside the Fugaku model modules: node peak GFlops/s, HBM2 GB/s,
#: system peak PFlops/s, and the 2.0/2.2/2.7 GHz clocks in Hz.
FLAGGED_FLOATS = (3380.0, 1024.0, 537.0, 2.0e9, 2.2e9, 2.7e9)
#: Fugaku's node count.
FLAGGED_INTS = (158_976,)
#: A64FX PMU event names (Eq. 4/5 inputs).
FLAGGED_NAMES = frozenset(
    {"FP_FIXED_OPS_SPEC", "FP_SCALE_OPS_SPEC", "BUS_READ_TOTAL_MEM", "BUS_WRITE_TOTAL_MEM"}
)


def _dotted(expr: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _is_flagged_constant(value: object) -> bool:
    if isinstance(value, float):
        return any(value == flagged for flagged in FLAGGED_FLOATS)
    if type(value) is int:
        return value in FLAGGED_INTS
    if isinstance(value, str):
        return value in FLAGGED_NAMES
    return False


def _decorator_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    names = set()
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        dotted = _dotted(target)
        if dotted is not None:
            names.add(dotted.rsplit(".", 1)[-1])
    return names


def _method_info(node: ast.FunctionDef | ast.AsyncFunctionDef, unit_lines: dict) -> dict:
    decorators = _decorator_names(node)
    args = [a.arg for a in node.args.posonlyargs + node.args.args]
    if args and args[0] in {"self", "cls"}:
        args = args[1:]
    raw = def_window_annotation(node, unit_lines)
    return {
        "line": node.lineno,
        "args": args,
        "kwonly": sorted(a.arg for a in node.args.kwonlyargs),
        "vararg": node.args.vararg is not None,
        "kwarg": node.args.kwarg is not None,
        "is_property": bool(decorators & {"property", "cached_property"}),
        "is_abstract": bool(decorators & {"abstractmethod", "abstractproperty"}),
        "unit": " ".join(raw.split()) if raw is not None else None,
    }


def _class_info(node: ast.ClassDef, unit_lines: dict) -> dict:
    methods: dict = {}
    abstract = False
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info = _method_info(stmt, unit_lines)
            methods[stmt.name] = info
            abstract = abstract or info["is_abstract"]
    return {
        "line": node.lineno,
        "bases": [d for d in (_dotted(b) for b in node.bases) if d is not None],
        "abstract": abstract,
        "methods": methods,
    }


def collect_sysmodel_facts(summary, tree: ast.Module, source: str) -> None:
    """Populate ``summary.sysmodel`` from one parsed module."""
    facts: dict = {}

    constants = [
        {"line": node.lineno, "value": repr(node.value)}
        for node in ast.walk(tree)
        if isinstance(node, ast.Constant) and _is_flagged_constant(node.value)
    ]
    if constants:
        facts["constants"] = constants

    if "SystemModel" in source:
        unit_lines = tagged_comments(source, "unit")
        # Only classes with bases can sit in the hierarchy (the root
        # itself derives from abc.ABC); the contract rule resolves the
        # actual SystemModel ancestry transitively across modules.
        classes = {
            stmt.name: info
            for stmt in tree.body
            if isinstance(stmt, ast.ClassDef)
            for info in (_class_info(stmt, unit_lines),)
            if stmt.name == "SystemModel" or info["bases"]
        }
        if classes:
            COUNTERS["contract_classes"] += len(classes)
            facts["classes"] = classes

    if facts:
        summary.sysmodel = facts
