"""Shape/dtype abstract interpretation over numpy expressions.

Three rules share one forward fixpoint per function CFG (the PR 5
worklist engine), mapping local names to
:class:`~repro.staticcheck.perf.arrays.ArrayValue` points:

* ``dtype-upcast`` — arithmetic mixes two concretely known element types
  that numpy silently widens (``float32 * float64``, or an integer array
  meeting a sub-64-bit float): the classic 2x memory-traffic regression
  on a hot kernel.  Python literals are NEP 50 weak scalars and never
  fire this (``float32_arr * 2.0`` stays float32).
* ``dtype-narrowing`` — a value of concretely wider float dtype flows
  into a target declared ``# dtype: float32`` (or a ``def``'s declared
  ``-> float32`` return): silent precision loss that an explicit
  ``astype`` would make visible.
* ``broadcast-mismatch`` — an elementwise operation combines two known
  shapes whose trailing dims are unequal concrete ints with no 1 to
  broadcast over: numpy will raise at runtime, on whatever input first
  reaches the line.

dtype facts enter from numpy constructors (``np.zeros(...,
dtype=np.float32)`` and friends), ``astype``, scalar constructors and
``# dtype:`` annotations; shape facts from constructor shape arguments,
``reshape``/``.T`` and ``# shape:`` annotations, with dims tracked
symbolically (``n``, ``X.shape[0]``).  Everything else is unknown and
unknown never fires — the tier is silent on code it cannot follow.

All facts are file-local (annotations + construction sites in the same
file), so the rules are sound under the incremental cache.
"""

from __future__ import annotations

import ast

from repro.staticcheck.findings import Finding
from repro.staticcheck.flow import cfgs_for
from repro.staticcheck.flow.cfg import ExceptBind, ForBind, Test, WithEnter, WithExit
from repro.staticcheck.flow.fixpoint import ForwardAnalysis, run_forward
from repro.staticcheck.perf import COUNTERS
from repro.staticcheck.perf.arrays import (
    FLOAT_WIDTHS,
    ArrayValue,
    WEAK,
    broadcast,
    dim_symbol,
    parse_def_dtype_spec,
    parse_dtype_spec,
    parse_shape_spec,
    promote,
    render_shape,
    tagged_comments,
)
from repro.staticcheck.registry import Rule, register

__all__ = ["DtypeUpcastRule", "DtypeNarrowingRule", "BroadcastMismatchRule"]

_UNKNOWN = ArrayValue()

#: Constructors whose first argument is the shape; value = default dtype.
_SHAPE_CONSTRUCTORS = {
    "numpy.zeros": "float64",
    "numpy.ones": "float64",
    "numpy.empty": "float64",
    "numpy.full": None,
}

#: ``*_like`` constructors: dtype and shape follow the prototype argument.
_LIKE_CONSTRUCTORS = {
    "numpy.zeros_like",
    "numpy.ones_like",
    "numpy.empty_like",
    "numpy.full_like",
}

#: float64-by-default range constructors (1-D result).
_RANGE_CONSTRUCTORS = {"numpy.linspace", "numpy.logspace", "numpy.geomspace"}

#: Conversions that preserve shape and take an optional dtype.
_AS_ARRAY = {"numpy.asarray", "numpy.array", "numpy.ascontiguousarray", "numpy.asfortranarray"}

#: Elementwise unary numpy functions that preserve a float dtype.
_FLOAT_PRESERVING = {
    "numpy.abs", "numpy.sqrt", "numpy.exp", "numpy.log", "numpy.log2",
    "numpy.log10", "numpy.sin", "numpy.cos", "numpy.tanh", "numpy.floor",
    "numpy.ceil", "numpy.rint", "numpy.clip", "numpy.negative",
}

#: Binary elementwise numpy functions that promote like operators.
_PROMOTING_BINARY = {"numpy.maximum", "numpy.minimum", "numpy.add", "numpy.subtract", "numpy.multiply", "numpy.divide", "numpy.power", "numpy.hypot", "numpy.fmax", "numpy.fmin"}

#: Methods transparent to dtype (shape becomes unknown).
_DTYPE_PRESERVING_METHODS = {"sum", "min", "max", "prod", "cumsum", "copy", "clip", "round"}

_ARITH_OPS = (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv, ast.Mod, ast.Pow)


def _dtype_from_node(node, module):
    """dtype named by an ``astype``/``dtype=`` argument, or ``None``."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return parse_dtype_spec(node.value)
    dotted = module.dotted_name(node)
    if dotted is None:
        return None
    if dotted.startswith("numpy."):
        return parse_dtype_spec(dotted[len("numpy."):])
    if dotted == "float":
        return "float64"
    if dotted in ("int", "bool"):
        return "int64" if dotted == "int" else "bool"
    return None


def _shape_from_args(call: ast.Call):
    """Shape tuple from a constructor's shape argument(s)."""
    if not call.args:
        return None
    first = call.args[0]
    if isinstance(first, (ast.Tuple, ast.List)):
        return tuple(dim_symbol(elt) for elt in first.elts)
    dim = dim_symbol(first)
    return (dim,) if dim is not None else (None,)


class _Env:
    """File-local declaration seeds for one module."""

    def __init__(self, module) -> None:
        self.module = module
        self.dtype_lines = tagged_comments(module.source, "dtype")
        self.shape_lines = tagged_comments(module.source, "shape")


def _line_annotation(stmt, lines: dict):
    end = getattr(stmt, "end_lineno", None) or stmt.lineno
    for line in range(stmt.lineno, end + 1):
        if line in lines:
            return lines[line]
    return None


def _def_annotation(fn, lines: dict):
    first_body_line = fn.body[0].lineno if fn.body else fn.lineno + 1
    for line in range(fn.lineno, first_body_line):
        if line in lines:
            return lines[line]
    return None


class _ArrayAnalysis(ForwardAnalysis):
    """Forward analysis: local name -> ArrayValue (absent = unknown)."""

    def __init__(self, env: _Env, params: dict) -> None:
        self.env = env
        self.params = params

    def initial(self):
        return dict(self.params)

    def join(self, a, b):
        out = {}
        for name in a.keys() & b.keys():
            value = a[name].join(b[name])
            if value != _UNKNOWN:
                out[name] = value
        return out

    # -- expression evaluation --------------------------------------------

    def eval(self, expr, state, report=None) -> ArrayValue:
        if isinstance(expr, ast.Constant):
            if isinstance(expr.value, (int, float, complex)) and not isinstance(
                expr.value, bool
            ):
                return ArrayValue(WEAK, ())
            return _UNKNOWN
        if isinstance(expr, ast.Name):
            return state.get(expr.id, _UNKNOWN)
        if isinstance(expr, ast.Attribute):
            value = self.eval(expr.value, state, report)
            if expr.attr == "T":
                shape = (
                    tuple(reversed(value.shape))
                    if value.shape is not None and len(value.shape) >= 2
                    else None
                )
                return ArrayValue(value.dtype, shape)
            if expr.attr == "real":
                return ArrayValue(value.dtype, value.shape)
            return _UNKNOWN
        if isinstance(expr, ast.BinOp):
            left = self.eval(expr.left, state, report)
            right = self.eval(expr.right, state, report)
            return self._binop(expr, left, right, report)
        if isinstance(expr, ast.UnaryOp):
            value = self.eval(expr.operand, state, report)
            if isinstance(expr.op, (ast.UAdd, ast.USub, ast.Invert)):
                return value
            return _UNKNOWN
        if isinstance(expr, ast.Compare):
            left = self.eval(expr.left, state, report)
            shape = None
            for comparator in expr.comparators:
                right = self.eval(comparator, state, report)
                shape, conflict = broadcast(left, right)
                if conflict is not None and report is not None:
                    self._report_broadcast(expr, left, right, conflict, report)
                left = right
            return ArrayValue("bool", shape)
        if isinstance(expr, ast.Call):
            return self._call(expr, state, report)
        if isinstance(expr, ast.IfExp):
            self.eval(expr.test, state, report)
            then = self.eval(expr.body, state, report)
            other = self.eval(expr.orelse, state, report)
            return then.join(other)
        if isinstance(expr, ast.BoolOp):
            for value in expr.values:
                self.eval(value, state, report)
            return _UNKNOWN
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            for element in expr.elts:
                self.eval(element, state, report)
            return _UNKNOWN
        if isinstance(expr, ast.Subscript):
            value = self.eval(expr.value, state, report)
            if not isinstance(expr.slice, (ast.Tuple, ast.Slice)):
                self.eval(expr.slice, state, report)
            # Indexing preserves the element type; the result shape
            # depends on the index kind, which we do not model.
            return ArrayValue(value.dtype, None)
        if isinstance(expr, ast.Starred):
            return self.eval(expr.value, state, report)
        return _UNKNOWN

    def _binop(self, node, left, right, report) -> ArrayValue:
        if isinstance(node.op, ast.MatMult):
            dtype, upcast = promote(left, right)
            if upcast is not None and report is not None:
                self._report_upcast(node, upcast, report)
            shape = None
            if (
                left.shape is not None
                and right.shape is not None
                and len(left.shape) == 2
                and len(right.shape) == 2
            ):
                inner_l, inner_r = left.shape[1], right.shape[1 - 1]
                if (
                    isinstance(inner_l, int)
                    and isinstance(inner_r, int)
                    and inner_l != inner_r
                ):
                    if report is not None:
                        report(
                            "broadcast-mismatch",
                            node,
                            f"matmul of {render_shape(left.shape)} @ "
                            f"{render_shape(right.shape)}: inner dimensions "
                            f"{inner_l} and {inner_r} differ",
                        )
                else:
                    shape = (left.shape[0], right.shape[1])
            return ArrayValue(dtype, shape)
        if isinstance(node.op, _ARITH_OPS):
            dtype, upcast = promote(left, right)
            if upcast is not None and report is not None:
                self._report_upcast(node, upcast, report)
            shape, conflict = broadcast(left, right)
            if conflict is not None and report is not None:
                self._report_broadcast(node, left, right, conflict, report)
            return ArrayValue(dtype, shape)
        return _UNKNOWN

    @staticmethod
    def _report_upcast(node, upcast, report) -> None:
        narrow, wide = upcast
        report(
            "dtype-upcast",
            node,
            f"mixes {narrow} and {wide} in arithmetic — numpy silently "
            f"upcasts the result to {wide}; cast one operand explicitly "
            "(element width drives hot-path memory traffic)",
        )

    @staticmethod
    def _report_broadcast(node, left, right, conflict, report) -> None:
        da, db, pos = conflict
        report(
            "broadcast-mismatch",
            node,
            f"combines shapes {render_shape(left.shape)} and "
            f"{render_shape(right.shape)}: dims {da} and {db} "
            f"(axis -{pos + 1}) cannot broadcast — this raises at runtime",
        )

    def _call(self, node: ast.Call, state, report) -> ArrayValue:
        args = [self.eval(arg, state, report) for arg in node.args]
        dtype_kw = None
        for keyword in node.keywords:
            value = self.eval(keyword.value, state, report)
            if keyword.arg == "dtype":
                dtype_kw = _dtype_from_node(keyword.value, self.env.module)
            del value
        dotted = self.env.module.dotted_name(node.func)
        if dotted is None and isinstance(node.func, ast.Attribute):
            receiver = self.eval(node.func.value, state, report)
            return self._method(node, receiver, args, dtype_kw, report)
        if dotted is None:
            return _UNKNOWN
        if dotted in _SHAPE_CONSTRUCTORS:
            default = _SHAPE_CONSTRUCTORS[dotted]
            if default is None and len(args) >= 2 and args[1].is_weak():
                default = "float64"
            elif default is None and len(args) >= 2:
                default = args[1].dtype if not args[1].is_weak() else None
            return ArrayValue(dtype_kw or default, _shape_from_args(node))
        if dotted in _LIKE_CONSTRUCTORS and args:
            proto = args[0]
            return ArrayValue(dtype_kw or proto.dtype, proto.shape)
        if dotted in _RANGE_CONSTRUCTORS:
            num = dim_symbol(node.args[2]) if len(node.args) >= 3 else None
            return ArrayValue(dtype_kw or "float64", (num,))
        if dotted == "numpy.arange":
            has_float = any(
                isinstance(a, ast.Constant) and isinstance(a.value, float)
                for a in node.args
            )
            return ArrayValue(dtype_kw or ("float64" if has_float else None), (None,))
        if dotted in ("numpy.eye", "numpy.identity"):
            n = dim_symbol(node.args[0]) if node.args else None
            return ArrayValue(dtype_kw or "float64", (n, n))
        if dotted in _AS_ARRAY and args:
            return ArrayValue(dtype_kw or args[0].dtype, args[0].shape)
        if dotted.startswith("numpy.") and parse_dtype_spec(dotted[len("numpy."):]):
            return ArrayValue(parse_dtype_spec(dotted[len("numpy."):]), ())
        if dotted in _FLOAT_PRESERVING and args:
            value = args[0]
            if value.dtype in FLOAT_WIDTHS:
                return ArrayValue(value.dtype, value.shape)
            return ArrayValue(None, value.shape)
        if dotted in _PROMOTING_BINARY and len(args) >= 2:
            dtype, upcast = promote(args[0], args[1])
            if upcast is not None and report is not None:
                self._report_upcast(node, upcast, report)
            shape, conflict = broadcast(args[0], args[1])
            if conflict is not None and report is not None:
                self._report_broadcast(node, args[0], args[1], conflict, report)
            return ArrayValue(dtype, shape)
        if dotted == "numpy.where" and len(args) == 3:
            dtype, upcast = promote(args[1], args[2])
            if upcast is not None and report is not None:
                self._report_upcast(node, upcast, report)
            return ArrayValue(dtype, None)
        return _UNKNOWN

    def _method(self, node: ast.Call, receiver: ArrayValue, args, dtype_kw, report) -> ArrayValue:
        attr = node.func.attr
        if attr == "astype" and node.args:
            dtype = _dtype_from_node(node.args[0], self.env.module)
            return ArrayValue(dtype or dtype_kw, receiver.shape)
        if attr == "copy":
            return receiver
        if attr == "reshape":
            if len(node.args) == 1 and isinstance(node.args[0], (ast.Tuple, ast.List)):
                dims = tuple(dim_symbol(e) for e in node.args[0].elts)
            else:
                dims = tuple(dim_symbol(a) for a in node.args)
            dims = tuple(None if d == -1 else d for d in dims)
            return ArrayValue(receiver.dtype, dims if dims else None)
        if attr in ("ravel", "flatten"):
            return ArrayValue(receiver.dtype, (None,))
        if attr == "transpose":
            shape = (
                tuple(reversed(receiver.shape))
                if receiver.shape is not None and not node.args
                else None
            )
            return ArrayValue(receiver.dtype, shape)
        if attr in _DTYPE_PRESERVING_METHODS:
            return ArrayValue(receiver.dtype, None)
        if attr in ("mean", "std", "var"):
            if receiver.dtype in FLOAT_WIDTHS:
                return ArrayValue(receiver.dtype, None)
            return ArrayValue("float64" if receiver.dtype is not None else None, None)
        return _UNKNOWN

    # -- transfer ----------------------------------------------------------

    def transfer(self, element, state):
        if isinstance(element, (Test, WithExit, ast.Return, ast.Expr, ast.Raise)):
            return state
        if isinstance(element, ForBind):
            target = element.node.target
            if isinstance(target, ast.Name):
                iterated = self.eval(element.node.iter, state, None)
                out = dict(state)
                element_shape = (
                    iterated.shape[1:]
                    if iterated.shape is not None and len(iterated.shape) >= 1
                    else None
                )
                self._bind(out, target.id, ArrayValue(iterated.dtype, element_shape))
                return out
            return self._clear_targets(target, state)
        if isinstance(element, WithEnter):
            if element.item.optional_vars is not None:
                return self._clear_targets(element.item.optional_vars, state)
            return state
        if isinstance(element, ExceptBind):
            name = element.handler.name
            if name and name in state:
                out = dict(state)
                out.pop(name)
                return out
            return state
        if isinstance(element, ast.Assign):
            return self._assign(element, element.targets, element.value, state)
        if isinstance(element, ast.AnnAssign):
            if element.value is None:
                return state
            return self._assign(element, [element.target], element.value, state)
        if isinstance(element, ast.AugAssign):
            if not isinstance(element.target, ast.Name):
                return state
            current = state.get(element.target.id, _UNKNOWN)
            value = self.eval(element.value, state, None)
            # In-place ops keep the target's dtype; shape may broadcast.
            out = dict(state)
            self._bind(out, element.target.id, ArrayValue(current.dtype, current.shape))
            return out
        return state

    def _assign(self, stmt, targets, value_expr, state):
        value = self.eval(value_expr, state, None)
        declared_dtype = self._declared_dtype(stmt)
        declared_shape = self._declared_shape(stmt)
        if declared_dtype is not None or declared_shape is not None:
            value = ArrayValue(declared_dtype or value.dtype, declared_shape or value.shape)
        out = dict(state)
        for target in targets:
            if isinstance(target, ast.Name):
                self._bind(out, target.id, value)
            elif isinstance(target, (ast.Tuple, ast.List)):
                out = self._clear_targets(target, out)
        return out

    def _declared_dtype(self, stmt):
        raw = _line_annotation(stmt, self.env.dtype_lines)
        return parse_dtype_spec(raw) if raw is not None else None

    def _declared_shape(self, stmt):
        raw = _line_annotation(stmt, self.env.shape_lines)
        return parse_shape_spec(raw) if raw is not None else None

    @staticmethod
    def _bind(state, name, value: ArrayValue) -> None:
        if value == _UNKNOWN:
            state.pop(name, None)
        else:
            state[name] = value

    def _clear_targets(self, target, state):
        names = [n.id for n in ast.walk(target) if isinstance(n, ast.Name)]
        if not any(name in state for name in names):
            return state
        out = dict(state)
        for name in names:
            out.pop(name, None)
        return out


def _narrowing_check(analysis, env, element, state, return_dtype, report):
    """Declaration-vs-value dtype checks for one statement."""
    if isinstance(element, ast.Return) and element.value is not None:
        value = analysis.eval(element.value, state, None)
        if (
            return_dtype in FLOAT_WIDTHS
            and value.dtype in FLOAT_WIDTHS
            and FLOAT_WIDTHS[value.dtype] > FLOAT_WIDTHS[return_dtype]
        ):
            report(
                "dtype-narrowing",
                element,
                f"returns {value.dtype} from a function declared "
                f"-> {return_dtype}: silent precision loss at the call "
                "boundary; astype explicitly",
            )
        return
    if isinstance(element, (ast.Assign, ast.AnnAssign)) and element.value is not None:
        declared = analysis._declared_dtype(element)
        if declared is None:
            return
        value = analysis.eval(element.value, state, None)
        if (
            declared in FLOAT_WIDTHS
            and value.dtype in FLOAT_WIDTHS
            and FLOAT_WIDTHS[value.dtype] > FLOAT_WIDTHS[declared]
        ):
            report(
                "dtype-narrowing",
                element,
                f"assigns a {value.dtype} value to a target annotated "
                f"# dtype: {declared}: silent precision loss; astype "
                "explicitly",
            )


def module_array_findings(module) -> list:
    """All dataflow findings for one file: ``(rule_id, line, col, message)``.

    One fixpoint per function CFG, shared by the three dtype/shape rules
    and memoized on the :class:`ModuleContext`.
    """
    cached = getattr(module, "_perf_array_findings", None)
    if cached is not None:
        return cached

    env = _Env(module)
    findings: list = []
    reported: set = set()

    def report(rule_id, node, message):
        key = (rule_id, node.lineno, node.col_offset, message)
        if key not in reported:
            reported.add(key)
            findings.append((rule_id, node.lineno, node.col_offset, message))

    for graph in cfgs_for(module):
        params: dict = {}
        return_dtype = None
        if graph.node is not None:
            raw = _def_annotation(graph.node, env.dtype_lines)
            if raw is not None:
                specs, return_dtype = parse_def_dtype_spec(raw)
                params = {name: ArrayValue(dtype, None) for name, dtype in specs.items()}
        analysis = _ArrayAnalysis(env, params)
        COUNTERS["array_fixpoints"] += 1
        result = run_forward(graph.cfg, analysis)
        for block in graph.cfg.blocks:
            if block.id not in result.in_states:
                continue  # unreachable
            state = result.in_states[block.id]
            for element in block.elements:
                _visit_element(analysis, env, element, state, return_dtype, report)
                state = analysis.transfer(element, state)

    module._perf_array_findings = findings
    return findings


def _visit_element(analysis, env, element, state, return_dtype, report):
    if isinstance(element, Test):
        analysis.eval(element.expr, state, report)
        return
    if isinstance(element, (ForBind, WithExit, ExceptBind)):
        return
    if isinstance(element, WithEnter):
        analysis.eval(element.item.context_expr, state, report)
        return
    if isinstance(element, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return  # nested scopes get their own graphs
    if isinstance(element, (ast.Return, ast.Assign, ast.AnnAssign)):
        if getattr(element, "value", None) is not None:
            analysis.eval(element.value, state, report)
        _narrowing_check(analysis, env, element, state, return_dtype, report)
        return
    if isinstance(element, ast.AugAssign):
        analysis.eval(element.value, state, report)
        return
    if isinstance(element, ast.Expr):
        analysis.eval(element.value, state, report)
        return
    if isinstance(element, ast.Assert):
        analysis.eval(element.test, state, report)
        return
    for child in ast.iter_child_nodes(element):
        if isinstance(child, ast.expr):
            analysis.eval(child, state, report)


class _ArrayRuleBase(Rule):
    """One shared dataflow pass; each subclass yields its rule's slice."""

    def check(self, module):
        for rule_id, line, col, message in module_array_findings(module):
            if rule_id == self.id:
                yield Finding(
                    path=module.path, line=line, col=col, rule_id=self.id, message=message
                )


@register
class DtypeUpcastRule(_ArrayRuleBase):
    id = "dtype-upcast"
    description = (
        "arithmetic mixes float32/float16 with float64 (or int arrays with "
        "narrow floats) and numpy silently widens the result"
    )


@register
class DtypeNarrowingRule(_ArrayRuleBase):
    id = "dtype-narrowing"
    description = (
        "a wider float value flows into a target declared # dtype: narrower "
        "(or a declared -> dtype return): silent precision loss"
    )


@register
class BroadcastMismatchRule(_ArrayRuleBase):
    id = "broadcast-mismatch"
    description = (
        "an elementwise operation combines statically known shapes whose "
        "concrete dims cannot broadcast; numpy raises at runtime"
    )
