"""Vectorization invariants, enforced on hot functions only.

These rules are deliberately opinionated — a Python-level loop is fine in
``fit`` or a CLI — so they run only inside functions the file-local
derivation marks hot (see :mod:`repro.staticcheck.perf.hotpath`).  Five
findings, one shared AST walk per file:

* ``scalar-loop`` — ``for i in range(X.shape[0])`` (or ``range(len(X))``)
  with ``X[i]`` in the body: per-row Python iteration over an array that
  one vectorized call would replace.  Stepped/offset ranges are exempt —
  ``range(0, n, chunk)`` is the blocking idiom, not a scalar loop.
* ``per-item-call`` — a :data:`~repro.staticcheck.perf.hotpath.BATCH_CONTRACTS`
  API (``predict``, ``encode``, ``query``, ...) called inside a loop or
  comprehension: these APIs accept whole batches, so the loop multiplies
  per-call overhead by n.
* ``loop-alloc`` — a numpy buffer constructor (``zeros``/``empty``/...)
  inside a loop: the allocation is loop-invariant in size and should be
  hoisted and reused.
* ``quadratic-growth`` — ``x = np.concatenate([x, part])`` (or
  ``np.append``/``vstack``/... self-referencing the target) inside a
  loop: every iteration copies everything accumulated so far, O(n²)
  total.  Append to a list and concatenate once.
* ``hidden-copy`` — copies that do not look like copies: a
  concatenate-family call inside a loop (each call materializes all its
  inputs), fancy indexing with a list literal, and ``reshape`` of a
  transposed view (non-contiguous source forces a full copy).
"""

from __future__ import annotations

import ast

from repro.staticcheck.findings import Finding
from repro.staticcheck.perf.arrays import _render_chain
from repro.staticcheck.perf.hotpath import BATCH_CONTRACTS, hot_functions
from repro.staticcheck.registry import Rule, register

__all__ = [
    "ScalarLoopRule",
    "PerItemCallRule",
    "LoopAllocRule",
    "QuadraticGrowthRule",
    "HiddenCopyRule",
]

_ALLOC_CALLS = {
    "numpy.zeros",
    "numpy.ones",
    "numpy.empty",
    "numpy.full",
    "numpy.zeros_like",
    "numpy.ones_like",
    "numpy.empty_like",
    "numpy.full_like",
    "numpy.eye",
    "numpy.identity",
    "numpy.arange",
    "numpy.linspace",
}

_CONCAT_CALLS = {
    "numpy.concatenate",
    "numpy.append",
    "numpy.vstack",
    "numpy.hstack",
    "numpy.dstack",
    "numpy.stack",
    "numpy.column_stack",
    "numpy.row_stack",
}

_LOOP_NODES = (ast.For, ast.While)
_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)


def _range_over_array(iter_node: ast.expr, module):
    """``("X", "X.shape[0]")`` when ``iter_node`` is a full per-row range.

    Matches ``range(X.shape[0])`` / ``range(len(X))`` with exactly one
    argument — any start/step argument means chunking, not scalar
    iteration.
    """
    if not (
        isinstance(iter_node, ast.Call)
        and isinstance(iter_node.func, ast.Name)
        and iter_node.func.id == "range"
        and len(iter_node.args) == 1
        and not iter_node.keywords
    ):
        return None
    arg = iter_node.args[0]
    if (
        isinstance(arg, ast.Subscript)
        and isinstance(arg.value, ast.Attribute)
        and arg.value.attr == "shape"
        and isinstance(arg.slice, ast.Constant)
        and arg.slice.value == 0
    ):
        base = _render_chain(arg.value.value)
        if base is not None:
            return base, f"{base}.shape[0]"
    if (
        isinstance(arg, ast.Call)
        and isinstance(arg.func, ast.Name)
        and arg.func.id == "len"
        and len(arg.args) == 1
    ):
        base = _render_chain(arg.args[0])
        if base is not None:
            return base, f"len({base})"
    return None


def _indexes_with(body, base: str, loop_var: str) -> bool:
    """Does any ``base[loop_var, ...]`` subscript appear in ``body``?"""
    for stmt in body:
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Subscript):
                continue
            if _render_chain(node.value) != base:
                continue
            index = node.slice
            first = index.elts[0] if isinstance(index, ast.Tuple) and index.elts else index
            if isinstance(first, ast.Name) and first.id == loop_var:
                return True
    return False


def _is_numeric_list(node: ast.List) -> bool:
    return bool(node.elts) and all(
        (isinstance(e, ast.Constant) and isinstance(e.value, int))
        or isinstance(e, (ast.Name, ast.UnaryOp))
        for e in node.elts
    )


def _transposed_receiver(node: ast.expr, module) -> bool:
    if isinstance(node, ast.Attribute) and node.attr == "T":
        return True
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Attribute) and node.func.attr == "transpose":
            return True
        if module.dotted_name(node.func) == "numpy.transpose":
            return True
    return False


class _HotFunctionScan(ast.NodeVisitor):
    """One pass over one hot function body; nested defs are skipped
    (they are separate functions with their own hotness)."""

    def __init__(self, module, qual: str, report) -> None:
        self.module = module
        self.qual = qual
        self.report = report
        self.loop_depth = 0
        #: Call nodes already claimed by quadratic-growth, so hidden-copy
        #: does not double-report the same concatenate.
        self._claimed: set = set()

    # -- scope fences ------------------------------------------------------

    def visit_FunctionDef(self, node) -> None:
        pass

    visit_AsyncFunctionDef = visit_FunctionDef
    visit_ClassDef = visit_FunctionDef

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass

    # -- loop contexts -----------------------------------------------------

    def visit_For(self, node: ast.For) -> None:
        over = _range_over_array(node.iter, self.module)
        if (
            over is not None
            and isinstance(node.target, ast.Name)
            and _indexes_with(node.body, over[0], node.target.id)
        ):
            base, sym = over
            self.report(
                "scalar-loop",
                node,
                f"iterates '{base}' row by row ('for {node.target.id} in "
                f"range({sym})') on a hot path — one vectorized numpy call "
                "over the whole array replaces this Python loop",
            )
        # the iterator expression runs once, at the enclosing depth
        self.visit(node.iter)
        self.loop_depth += 1
        for stmt in node.body + node.orelse:
            self.visit(stmt)
        self.loop_depth -= 1

    def visit_While(self, node: ast.While) -> None:
        self.loop_depth += 1
        self.generic_visit(node)
        self.loop_depth -= 1

    def _visit_comprehension(self, node) -> None:
        # the first generator's source runs once; everything else is
        # evaluated per item
        self.visit(node.generators[0].iter)
        self.loop_depth += 1
        if isinstance(node, ast.DictComp):
            self.visit(node.key)
            self.visit(node.value)
        else:
            self.visit(node.elt)
        for index, gen in enumerate(node.generators):
            if index > 0:
                self.visit(gen.iter)
            for cond in gen.ifs:
                self.visit(cond)
        self.loop_depth -= 1

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    # -- findings ----------------------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        if (
            self.loop_depth > 0
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Call)
            and self.module.dotted_name(node.value.func) in _CONCAT_CALLS
        ):
            target = node.targets[0].id
            feeds_self = any(
                isinstance(n, ast.Name) and n.id == target
                for arg in node.value.args
                for n in ast.walk(arg)
            )
            if feeds_self:
                self._claimed.add(id(node.value))
                short = self.module.dotted_name(node.value.func).replace("numpy.", "np.")
                self.report(
                    "quadratic-growth",
                    node,
                    f"grows '{target}' with {short} every iteration — each "
                    "call re-copies everything accumulated so far (O(n²) "
                    "total); append parts to a list and concatenate once "
                    "after the loop",
                )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        dotted = self.module.dotted_name(node.func)
        if self.loop_depth > 0:
            name = None
            if isinstance(node.func, ast.Attribute):
                name = node.func.attr
            elif isinstance(node.func, ast.Name):
                name = node.func.id
            if name in BATCH_CONTRACTS:
                self.report(
                    "per-item-call",
                    node,
                    f"calls batched API '{name}()' once per item inside a "
                    "loop on a hot path — it accepts a whole batch; hoist "
                    "the call out of the loop",
                )
            if dotted in _ALLOC_CALLS:
                short = dotted.replace("numpy.", "np.")
                self.report(
                    "loop-alloc",
                    node,
                    f"allocates with {short} inside a loop on a hot path — "
                    "hoist the buffer out of the loop and reuse it",
                )
            if dotted in _CONCAT_CALLS and id(node) not in self._claimed:
                short = dotted.replace("numpy.", "np.")
                self.report(
                    "hidden-copy",
                    node,
                    f"{short} inside a loop on a hot path copies every "
                    "input on each call — collect parts and concatenate "
                    "once, or preallocate",
                )
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "reshape"
            and _transposed_receiver(node.func.value, self.module)
        ):
            self.report(
                "hidden-copy",
                node,
                "reshape of a transposed view forces a full copy (the "
                "source is non-contiguous) — reorder the axes in the "
                "computation or make the copy explicit",
            )
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if isinstance(node.slice, ast.List) and _is_numeric_list(node.slice):
            self.report(
                "hidden-copy",
                node,
                "fancy indexing with a list literal materializes a copy of "
                "the selected rows on a hot path — precompute an index "
                "array, or slice if the rows are contiguous",
            )
        self.generic_visit(node)


def module_vector_findings(module) -> list:
    """Vectorization findings for one file: ``(rule_id, line, col, message)``.

    One walk over the file's hot functions, shared by the five rules and
    memoized on the :class:`ModuleContext`.
    """
    cached = getattr(module, "_perf_vector_findings", None)
    if cached is not None:
        return cached

    findings: list = []
    reported: set = set()

    def report(rule_id, node, message):
        key = (rule_id, node.lineno, node.col_offset, message)
        if key not in reported:
            reported.add(key)
            findings.append((rule_id, node.lineno, node.col_offset, message))

    for qual, (node, _reason) in sorted(hot_functions(module).items()):
        scan = _HotFunctionScan(module, qual, report)
        for stmt in node.body:
            scan.visit(stmt)

    module._perf_vector_findings = findings
    return findings


class _VectorRuleBase(Rule):
    """One shared hot-function walk; each subclass yields its slice."""

    def check(self, module):
        for rule_id, line, col, message in module_vector_findings(module):
            if rule_id == self.id:
                yield Finding(
                    path=module.path, line=line, col=col, rule_id=self.id, message=message
                )


@register
class ScalarLoopRule(_VectorRuleBase):
    id = "scalar-loop"
    description = (
        "a hot function iterates an ndarray row by row in Python "
        "(for i in range(X.shape[0])) instead of one vectorized call"
    )


@register
class PerItemCallRule(_VectorRuleBase):
    id = "per-item-call"
    description = (
        "a hot loop calls a batched API (predict/encode/query/...) once "
        "per item instead of once per batch"
    )


@register
class LoopAllocRule(_VectorRuleBase):
    id = "loop-alloc"
    description = (
        "a hot loop allocates a fresh numpy buffer every iteration "
        "instead of hoisting and reusing it"
    )


@register
class QuadraticGrowthRule(_VectorRuleBase):
    id = "quadratic-growth"
    description = (
        "a hot loop grows an array by self-concatenation every iteration: "
        "O(n²) copying that a list-append + single concatenate avoids"
    )


@register
class HiddenCopyRule(_VectorRuleBase):
    id = "hidden-copy"
    description = (
        "a hot path makes a copy that does not look like one: concatenate "
        "in a loop, list-literal fancy indexing, or reshape of a "
        "transposed view"
    )
