"""Performance tier: shape/dtype dataflow + hot-path vectorization rules.

The correctness tiers (PR 2-5) guard *what* the code computes; this
package guards *how fast* it computes it.  Two rule families:

* :mod:`repro.staticcheck.perf.dataflow` — an abstract interpretation of
  numpy expressions over a dtype lattice and a symbolic-shape domain
  (built on the PR 5 CFG/worklist fixpoint engine): silent
  float64-upcast, dtype-narrowing against ``# dtype:`` declarations, and
  broadcast mismatches between statically known shapes;
* :mod:`repro.staticcheck.perf.vectorization` — vectorization invariants
  enforced on *hot paths* only (see :mod:`repro.staticcheck.perf.hotpath`):
  scalar loops over ndarrays, per-item calls to batched APIs, allocations
  inside loops, quadratic append/concatenate growth and hidden copies.

Hot paths are derived per file from explicit ``# hotpath:`` annotations
plus a registry of serve/predict/encode entry-point names, closed over
the intra-module call graph — file-local evidence only, so the rules stay
sound under the content-hash incremental cache.  The cross-module half
lives in :class:`~repro.staticcheck.perf.hotpath.HotPathGapRule`, a
project rule that walks call-graph reachability from the entry points and
demands an annotation wherever the per-file derivation would be blind.

Work counters: :data:`COUNTERS` accumulates hot-path/fixpoint effort for
the CLI's ``--statistics`` (snapshot-and-diff around each file analysis,
mirroring :data:`repro.staticcheck.flow.COUNTERS`).
"""

from __future__ import annotations

__all__ = ["COUNTERS", "snapshot_counters"]

#: Process-wide effort counters, surfaced by ``--statistics``.
COUNTERS = {"hot_functions": 0, "array_fixpoints": 0}


def snapshot_counters() -> dict:
    """Copy of the current counter values (diff against a later snapshot)."""
    return dict(COUNTERS)
