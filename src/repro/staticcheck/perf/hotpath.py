"""Hot-path derivation and the cross-module annotation-gap rule.

A function is *hot* when it can run per request in the serve path.  The
per-file derivation — the only evidence the cached vectorization rules
may use — combines three file-local sources:

1. an explicit ``# hotpath: <reason>`` comment in the ``def`` header
   window (decorator-to-first-statement, same window the unit tier uses
   for ``# unit:`` specs);
2. the :data:`ENTRY_POINTS` name registry — ``predict``, ``encode``,
   ``query``, ``serve`` and friends are hot by convention, wherever they
   are defined (the scalar reference oracles deliberately use
   ``*_scalar`` names so they stay cold);
3. the intra-module call closure of 1 + 2: a helper called from a hot
   function in the same file is hot too, with no annotation needed.

What the per-file view cannot see is a hot call that crosses a module
boundary.  :class:`HotPathGapRule` closes that hole from the project
tier: it walks the PR 3 call-graph facts from every hot function and
demands a ``# hotpath:`` annotation on any statically resolved callee in
*another* module that the callee's own file would not classify as hot.
Once annotated, the callee's file re-derives locally and the closure
resumes there on the next run — the annotation is the cache-sound way to
propagate hotness across files.

:data:`BATCH_CONTRACTS` is the registry of APIs with a batched calling
convention; calling one per item inside a hot loop is the
``per-item-call`` finding in :mod:`repro.staticcheck.perf.vectorization`.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.staticcheck.findings import Finding
from repro.staticcheck.perf import COUNTERS
from repro.staticcheck.perf.arrays import tagged_comments
from repro.staticcheck.registry import ProjectRule, register_project

__all__ = [
    "ENTRY_POINTS",
    "BATCH_CONTRACTS",
    "HotPathGapRule",
    "annotated_quals",
    "hot_functions",
    "hotpath_lines",
]

#: Function/method basenames that are serve-path entry points by name.
ENTRY_POINTS = frozenset(
    {
        "predict",
        "predict_proba",
        "predict_records",
        "encode",
        "query",
        "kneighbors",
        "characterize",
        "serve",
    }
)

#: APIs with a batched calling convention: ``name(batch)`` exists, so
#: ``for item: name(item)`` on a hot path throws away the vectorization.
BATCH_CONTRACTS = frozenset(
    {"predict", "predict_proba", "encode", "query", "kneighbors"}
)

#: Method basenames too generic for the unique-method fallback: a
#: ``vocab.get(...)`` on a dict must not resolve to the one class in the
#: project that happens to define ``get``.
_AMBIENT_METHODS = frozenset(
    {
        "get", "set", "items", "keys", "values", "append", "extend",
        "pop", "update", "copy", "add", "remove", "setdefault", "close",
        "read", "write", "join", "split", "strip", "sort", "clear",
    }
)


def hotpath_lines(source: str) -> dict:
    """Line -> reason text for every ``# hotpath:`` comment."""
    return tagged_comments(source, "hotpath")


def _iter_defs(tree: ast.Module):
    """Yield ``(qualname, def node)`` for every function, depth-first."""
    stack = [("", node) for node in reversed(tree.body)]
    while stack:
        prefix, node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qual = f"{prefix}{node.name}"
            yield qual, node
            for child in reversed(node.body):
                stack.append((f"{qual}.", child))
        elif isinstance(node, ast.ClassDef):
            for child in reversed(node.body):
                stack.append((f"{prefix}{node.name}.", child))


def _def_window_annotation(node, lines: dict):
    """Annotation text in the def header window, or ``None``.

    The window spans the first decorator line through the line before the
    first body statement, so the comment may ride the ``def`` line, a
    decorator, or its own line between them.
    """
    start = min([node.lineno] + [d.lineno for d in node.decorator_list])
    for line in range(start, node.body[0].lineno + 1):
        if line in lines and (line < node.body[0].lineno or line == node.lineno):
            return lines[line]
    return None


def annotated_quals(tree: ast.Module, source: str) -> dict:
    """Qualname -> reason for every explicitly ``# hotpath:``-annotated def."""
    lines = hotpath_lines(source)
    if not lines:
        return {}
    out = {}
    for qual, node in _iter_defs(tree):
        reason = _def_window_annotation(node, lines)
        if reason is not None:
            out[qual] = reason
    return out


class _CallCollector(ast.NodeVisitor):
    """Call-target names inside one def body, nested defs excluded."""

    def __init__(self) -> None:
        self.names: set = set()
        self.self_attrs: set = set()
        self.other_attrs: set = set()

    def visit_FunctionDef(self, node) -> None:  # nested: separate function
        pass

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            self.names.add(func.id)
        elif isinstance(func, ast.Attribute):
            if isinstance(func.value, ast.Name) and func.value.id == "self":
                self.self_attrs.add(func.attr)
            else:
                self.other_attrs.add(func.attr)
        self.generic_visit(node)


def hot_functions(module) -> dict:
    """Qualname -> ``(def node, reason)`` for every hot function in a file.

    File-local derivation only (annotations + entry-point names +
    intra-module call closure), memoized on the :class:`ModuleContext` so
    the dataflow and vectorization rules share one computation.
    """
    cached = getattr(module, "_perf_hot", None)
    if cached is not None:
        return cached

    lines = hotpath_lines(module.source)
    defs = dict(_iter_defs(module.tree))
    hot: dict = {}
    for qual, node in defs.items():
        reason = _def_window_annotation(node, lines) if lines else None
        if reason is not None:
            hot[qual] = (node, f"# hotpath: {reason}")
        elif node.name in ENTRY_POINTS:
            hot[qual] = (node, f"entry point name '{node.name}'")

    # intra-module call closure over three file-local edge kinds: bare
    # names to module-level defs, self.X to a method of the same class,
    # and obj.X to a module-unique method basename (receiver not an
    # import alias, so np.sum-style calls never match).
    toplevel = {q: q for q in defs if "." not in q}
    by_class: dict = {}
    by_basename: dict = {}
    for qual in defs:
        if "." in qual:
            owner, base = qual.rsplit(".", 1)
            by_class.setdefault((owner, base), qual)
            by_basename.setdefault(base, []).append(qual)

    worklist = list(hot)
    while worklist:
        qual = worklist.pop()
        node, _reason = hot[qual]
        calls = _CallCollector()
        for stmt in node.body:
            calls.visit(stmt)
        targets = set()
        for name in calls.names:
            if name in toplevel:
                targets.add(name)
        owner = qual.rsplit(".", 1)[0] if "." in qual else None
        for attr in calls.self_attrs:
            if owner is not None and (owner, attr) in by_class:
                targets.add(by_class[(owner, attr)])
            elif len(by_basename.get(attr, ())) == 1:
                targets.add(by_basename[attr][0])
        for attr in calls.other_attrs:
            if attr not in module.imports and len(by_basename.get(attr, ())) == 1:
                targets.add(by_basename[attr][0])
        for target in targets:
            if target not in hot:
                hot[target] = (defs[target], f"called from hot '{qual}'")
                worklist.append(target)

    COUNTERS["hot_functions"] += len(hot)
    module._perf_hot = hot
    return hot


@register_project
class HotPathGapRule(ProjectRule):
    id = "hot-path-gap"
    description = (
        "a function reachable from a hot path in another module has no "
        "# hotpath: annotation, so the per-file vectorization rules are "
        "blind to it"
    )

    def check(self, project) -> Iterator[Finding]:
        # Deferred: importing project.concurrency at module scope would
        # cycle through repro.staticcheck.project.__init__.
        from repro.staticcheck.project.concurrency import _model_for

        model = _model_for(project)

        annotated: set = set()
        hot: set = set()
        for module in sorted(project.summaries):
            summary = project.summaries[module]
            for qual, tag in getattr(summary, "hotpaths", {}).items():
                annotated.add(f"{module}.{qual}")
            for qual, sig in summary.functions.items():
                if sig.kind != "class" and qual.rsplit(".", 1)[-1] in ENTRY_POINTS:
                    hot.add(f"{module}.{qual}")
        hot |= annotated

        # Close over call facts.  Same-module targets are hot for free
        # (the per-file closure finds them); a cross-module target that
        # is not already hot is the gap this rule exists to report.
        gaps: dict = {}
        worklist = sorted(hot)
        while worklist:
            full = worklist.pop()
            caller_module = model.homes.get(full, ("", ""))[0]
            for callee, line, _held, local_receiver in model.funcs.get(full, {}).get(
                "calls", []
            ):
                if (
                    local_receiver
                    and callee.rsplit(".", 1)[-1] in _AMBIENT_METHODS
                ):
                    continue
                target = model.resolve_callee(callee, full, local_receiver)
                if target is None or target == full:
                    continue
                target_module, _cls = model.homes.get(target, ("", ""))
                qual = target[len(target_module) + 1 :] if target_module else target
                summary = project.summaries.get(target_module)
                if summary is None:
                    continue
                sig = summary.functions.get(qual)
                if sig is not None and sig.kind == "class":
                    continue  # constructing an object is not a hot loop body
                if target_module == caller_module:
                    if target not in hot:
                        hot.add(target)
                        worklist.append(target)
                    continue
                if target in hot:
                    continue
                witness = (model.paths.get(full, ""), line, full)
                if target not in gaps or witness < gaps[target]:
                    gaps[target] = witness

        for target in sorted(gaps):
            caller_path, line, full = gaps[target]
            target_module, _cls = model.homes.get(target, ("", ""))
            qual = target[len(target_module) + 1 :] if target_module else target
            summary = project.summaries[target_module]
            sig = summary.functions.get(qual)
            def_line = sig.line if sig is not None else 1
            yield self.finding(
                summary.path,
                def_line,
                f"'{qual}' is called from hot path '{full}' "
                f"({caller_path}:{line}) but its own file cannot see that: "
                "mark the def with '# hotpath: <reason>' so the "
                "vectorization rules cover it",
            )
