"""Abstract domain for numpy values: dtype lattice + symbolic shapes.

The perf dataflow tier interprets numpy expressions over
:class:`ArrayValue` — a flat product of a dtype element and a symbolic
shape.  Both components err toward "unknown": findings fire only when
*both* operands of an interaction are concrete and provably conflicting,
so the tier is quiet by construction on code it cannot follow.

dtype lattice
    ``None`` is top (unknown); :data:`WEAK` marks Python numeric literals,
    which under NEP 50 never widen an array operand (``float32_arr * 2.0``
    stays float32) and therefore never participate in upcast findings;
    concrete elements are dtype name strings (``"float32"`` ...).

symbolic shapes
    ``None`` is an unknown shape; otherwise a tuple of dims, each an
    ``int``, a symbol string (rendered from the source expression, e.g.
    ``"n"`` or ``"X.shape[0]"``), or ``None`` for an unknown dim.  Two
    dims conflict only when both are ints — distinct symbols are never
    assumed unequal, so symbol staleness can only suppress findings,
    never invent them.

Annotations ride in comments (strings never match), scanned with the same
tokenize-based approach as the unit tier's ``annotation_lines``:

* ``# dtype: float32`` on an assignment declares the target's element
  type; ``# dtype: X=float32, w=float64 -> float32`` on a ``def`` line
  seeds parameters and declares the return dtype.
* ``# shape: (n, k)`` on an assignment declares the target's shape.
* ``# hotpath: <reason>`` marks a function as serve-critical (parsed
  here, consumed by :mod:`repro.staticcheck.perf.hotpath`).
"""

from __future__ import annotations

import ast
import io
import tokenize

__all__ = [
    "ArrayValue",
    "WEAK",
    "FLOAT_WIDTHS",
    "promote",
    "broadcast",
    "render_shape",
    "tagged_comments",
    "parse_dtype_spec",
    "parse_def_dtype_spec",
    "parse_shape_spec",
    "dim_symbol",
]

#: Recognised floating dtype names, by element width in bits.
FLOAT_WIDTHS = {"float16": 16, "float32": 32, "float64": 64}

_INT_DTYPES = {
    "int8", "int16", "int32", "int64",
    "uint8", "uint16", "uint32", "uint64",
    "intp", "bool",
}

#: Every dtype name an annotation or ``astype`` argument may use.
KNOWN_DTYPES = set(FLOAT_WIDTHS) | _INT_DTYPES | {"complex64", "complex128"}


class _Weak:
    """Python numeric literal: dtype-polymorphic under NEP 50."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "WEAK"


WEAK = _Weak()


class ArrayValue:
    """Abstract numpy value: ``(dtype, shape)``, each possibly unknown."""

    __slots__ = ("dtype", "shape")

    def __init__(self, dtype=None, shape=None) -> None:
        self.dtype = dtype
        self.shape = shape

    def __eq__(self, other) -> bool:
        if not isinstance(other, ArrayValue):
            return NotImplemented
        return _dtype_eq(self.dtype, other.dtype) and self.shape == other.shape

    def __hash__(self) -> int:
        return hash((str(self.dtype), self.shape))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ArrayValue(dtype={self.dtype!r}, shape={self.shape!r})"

    def is_weak(self) -> bool:
        return isinstance(self.dtype, _Weak)

    def join(self, other: "ArrayValue") -> "ArrayValue":
        """Least upper bound: components that disagree go to unknown."""
        dtype = self.dtype if _dtype_eq(self.dtype, other.dtype) else None
        if self.shape is not None and other.shape is not None and len(self.shape) == len(other.shape):
            shape = tuple(
                a if a == b else None for a, b in zip(self.shape, other.shape)
            )
        else:
            shape = self.shape if self.shape == other.shape else None
        return ArrayValue(dtype, shape)


def _dtype_eq(a, b) -> bool:
    if isinstance(a, _Weak) or isinstance(b, _Weak):
        return isinstance(a, _Weak) and isinstance(b, _Weak)
    return a == b


def promote(a: ArrayValue, b: ArrayValue):
    """NEP 50 promotion of two abstract operands.

    Returns ``(result_dtype, upcast)`` where ``upcast`` is ``None`` or a
    ``(narrow, wide)`` pair naming a *silent* widening worth reporting:
    mixed float widths, or an integer array meeting a sub-64-bit float
    (``int64 + float32 -> float64`` doubles the element size).  Weak
    scalars never widen anything; any unknown side yields unknown.
    """
    da, db = a.dtype, b.dtype
    if isinstance(da, _Weak):
        return (db if not isinstance(db, _Weak) else WEAK), None
    if isinstance(db, _Weak):
        return da, None
    if da is None or db is None:
        return None, None
    if da == db:
        return da, None
    wa, wb = FLOAT_WIDTHS.get(da), FLOAT_WIDTHS.get(db)
    if wa is not None and wb is not None:
        narrow, wide = (da, db) if wa < wb else (db, da)
        return wide, (narrow, wide)
    # integer array + narrow float array promotes to float64 (NEP 50)
    for ints, flt in ((da, db), (db, da)):
        if ints in _INT_DTYPES and flt in FLOAT_WIDTHS:
            if FLOAT_WIDTHS[flt] < 64:
                return "float64", (flt, "float64")
            return "float64", None
    return None, None


def broadcast(a: ArrayValue, b: ArrayValue):
    """Elementwise-broadcast two shapes.

    Returns ``(shape, conflict)``; ``conflict`` is ``None`` or a
    ``(dim_a, dim_b, axis_from_end)`` triple where two *concrete* ints
    disagree and neither is 1 — numpy would raise.  Symbolic or unknown
    dims always unify quietly.
    """
    sa, sb = a.shape, b.shape
    if sa is None or sb is None:
        return None, None
    if len(sa) < len(sb):
        sa = (1,) * (len(sb) - len(sa)) + sa
    elif len(sb) < len(sa):
        sb = (1,) * (len(sa) - len(sb)) + sb
    out = []
    for pos, (da, db) in enumerate(zip(reversed(sa), reversed(sb))):
        if da == 1:
            out.append(db)
        elif db == 1 or da == db:
            out.append(da)
        elif isinstance(da, int) and isinstance(db, int):
            return None, (da, db, pos)
        else:
            out.append(None)
    return tuple(reversed(out)), None


def render_shape(shape) -> str:
    """Human-readable shape: ``(n, 3)``; unknown dims render as ``?``."""
    dims = ", ".join("?" if d is None else str(d) for d in shape)
    if len(shape) == 1:
        dims += ","
    return f"({dims})"


# -- comment annotations -------------------------------------------------------


def tagged_comments(source: str, tag: str) -> dict:
    """Map line number -> text of every ``# <tag>: ...`` comment.

    Comments only — a ``# dtype:`` inside a string literal never counts.
    Unparsable files yield no annotations (the syntax-error rule owns
    that complaint).
    """
    prefix = f"# {tag}:"
    out: dict = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type == tokenize.COMMENT and tok.string.startswith(prefix):
                out[tok.start[0]] = tok.string[len(prefix):].strip()
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return {}
    return out


def parse_dtype_spec(spec: str):
    """``float32`` -> ``"float32"``; unknown names -> ``None``."""
    spec = spec.strip()
    return spec if spec in KNOWN_DTYPES else None


def parse_def_dtype_spec(spec: str):
    """Parse a def-line spec ``X=float32, w=float64 -> float32``.

    Returns ``(params, ret)``: a name->dtype dict and the declared return
    dtype (or ``None``).  Malformed fragments are skipped rather than
    guessed at.
    """
    ret = None
    if "->" in spec:
        spec, _, ret_part = spec.partition("->")
        ret = parse_dtype_spec(ret_part)
    params: dict = {}
    for part in spec.split(","):
        name, eq, value = part.partition("=")
        if not eq:
            continue
        dtype = parse_dtype_spec(value)
        if dtype is not None and name.strip().isidentifier():
            params[name.strip()] = dtype
    return params, ret


def parse_shape_spec(spec: str):
    """Parse ``(n, 3)`` / ``(n,)`` into a dim tuple, or ``None``.

    Dims may be decimal ints or identifiers (kept as symbols); anything
    else makes the whole spec unusable.
    """
    spec = spec.strip()
    if not (spec.startswith("(") and spec.endswith(")")):
        return None
    dims = []
    for part in spec[1:-1].split(","):
        part = part.strip()
        if not part:
            continue
        if part.lstrip("-").isdigit():
            dims.append(int(part))
        elif part.isidentifier():
            dims.append(part)
        else:
            return None
    return tuple(dims)


def dim_symbol(node):
    """Symbol for a dimension expression, or ``None`` if unrenderable.

    Int literals stay ints; names and ``X.shape[0]`` / ``len(X)`` style
    expressions render to stable strings so equal source text means equal
    symbol.  Symbols compare by string only — good enough within one
    function, and mismatches only suppress findings (see module doc).
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return node.value
    if isinstance(node, ast.Name):
        return node.id
    if (
        isinstance(node, ast.Subscript)
        and isinstance(node.value, ast.Attribute)
        and node.value.attr == "shape"
        and isinstance(node.slice, ast.Constant)
        and isinstance(node.slice.value, int)
    ):
        base = _render_chain(node.value.value)
        if base is not None:
            return f"{base}.shape[{node.slice.value}]"
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "len"
        and len(node.args) == 1
        and not node.keywords
    ):
        base = _render_chain(node.args[0])
        if base is not None:
            return f"len({base})"
    return None


def _render_chain(node):
    """Render ``a.b.c`` attribute chains; anything else is unrenderable."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))
