"""repro.staticcheck — AST-based project linter with MCBound-specific rules.

A self-contained static-analysis engine (stdlib only) that guards the
training/inference stack's correctness invariants at two levels.
Single-file rules check each module alone: replayable randomness,
monotonic timing, tolerance-based float comparisons at the roofline
boundary, no swallowed exceptions in the serving loop, process-safe
parallel tasks, honest ``__all__`` surfaces, and order-stable iteration
into feature encoding.  Project rules see every module at once through
the import and call graphs: no circular runtime imports, call sites that
match their intra-package callee's signature (``contract-drift``),
no unseeded-RNG/wall-clock values flowing into persisted models or
reports (``tainted-persistence``), and no ``__all__`` exports nothing
imports (``dead-export``).

Runs are incremental: with a cache path set, unchanged files (and files
whose import-graph dependencies are unchanged) skip parsing and the
single-file rules entirely, and cold files can be parsed in parallel.

Programmatic use::

    from repro.staticcheck import check_paths
    result = check_paths(["src/repro"], reference_paths=["tests"])
    assert result.clean, [str(f) for f in result.findings]

Command line::

    python -m repro.staticcheck --format json --cache --statistics

Suppress a single finding inline, with a justification::

    rng = np.random.default_rng()  # staticcheck: ignore[unseeded-rng] - fallback path
"""

from repro.staticcheck.baseline import apply_baseline, load_baseline, write_baseline
from repro.staticcheck.engine import (
    CheckResult,
    CheckStats,
    ModuleContext,
    UsageError,
    check_paths,
    check_source,
)
from repro.staticcheck.findings import Finding
from repro.staticcheck.registry import (
    ProjectRule,
    Rule,
    all_project_rules,
    all_rules,
    register,
    register_project,
    resolve_all_rules,
    resolve_project_rules,
    resolve_rules,
)
from repro.staticcheck.reporting import render, render_json, render_statistics, render_text
from repro.staticcheck.sarif import render_sarif

__all__ = [
    "CheckResult",
    "CheckStats",
    "Finding",
    "ModuleContext",
    "ProjectRule",
    "Rule",
    "UsageError",
    "all_project_rules",
    "all_rules",
    "apply_baseline",
    "check_paths",
    "check_source",
    "load_baseline",
    "register",
    "register_project",
    "render",
    "render_json",
    "render_sarif",
    "render_statistics",
    "render_text",
    "resolve_all_rules",
    "resolve_project_rules",
    "resolve_rules",
    "write_baseline",
]
