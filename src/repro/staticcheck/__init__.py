"""repro.staticcheck — AST-based project linter with MCBound-specific rules.

A self-contained static-analysis engine (stdlib only) that guards the
training/inference stack's correctness invariants: replayable randomness,
monotonic timing, tolerance-based float comparisons at the roofline
boundary, no swallowed exceptions in the serving loop, process-safe
parallel tasks, honest ``__all__`` surfaces, and order-stable iteration
into feature encoding.

Programmatic use::

    from repro.staticcheck import check_paths, resolve_rules
    result = check_paths(["src/repro"])
    assert result.clean, [str(f) for f in result.findings]

Command line::

    python -m repro.staticcheck src/repro --format json

Suppress a single finding inline, with a justification::

    rng = np.random.default_rng()  # staticcheck: ignore[unseeded-rng] - fallback path
"""

from repro.staticcheck.engine import CheckResult, ModuleContext, check_paths, check_source
from repro.staticcheck.findings import Finding
from repro.staticcheck.registry import Rule, all_rules, register, resolve_rules
from repro.staticcheck.reporting import render, render_json, render_text

__all__ = [
    "CheckResult",
    "Finding",
    "ModuleContext",
    "Rule",
    "all_rules",
    "check_paths",
    "check_source",
    "register",
    "render",
    "render_json",
    "render_text",
    "resolve_rules",
]
