"""Whole-program analysis layer: graphs, summaries and project rules.

Importing this package registers every built-in project rule, mirroring
how :mod:`repro.staticcheck.rules` registers the single-file rules.  The
layer is summary-driven: each module contributes a serializable
:class:`~repro.staticcheck.project.summary.ModuleSummary` (served from
the incremental cache when the file and its import-graph dependencies
are unchanged), and the rules reason over the assembled
:class:`~repro.staticcheck.project.graph.ProjectContext` — import graph,
approximate call graph, and every summary at once.
"""

from repro.staticcheck.project.concurrency import (
    BlockingUnderLockRule,
    ConcurrencyModel,
    LockOrderCycleRule,
    UnguardedSharedWriteRule,
)
from repro.staticcheck.project.contracts import ContractDriftRule
from repro.staticcheck.project.cycles import ImportCycleRule
from repro.staticcheck.project.dead_exports import DeadExportRule
from repro.staticcheck.project.graph import CallGraph, ImportGraph, ProjectContext
from repro.staticcheck.project.summary import ModuleSummary, build_summary, module_name_for_path
from repro.staticcheck.project.taint import TaintedPersistenceRule
from repro.staticcheck.capacity.contract import StreamingContractRule
from repro.staticcheck.perf.hotpath import HotPathGapRule
from repro.staticcheck.sysmodel.contract import SysmodelContractRule
from repro.staticcheck.sysmodel.leaks import SystemConstantLeakRule, SystemDispatchRule
from repro.staticcheck.procs.model import ProcessModel
from repro.staticcheck.procs.rules import (
    BlockingInWorkerRule,
    BoundaryEscapeRule,
    ChildGlobalDivergenceRule,
    ForkUnsafeInheritanceRule,
    SharedMemProtocolRule,
)

__all__ = [
    "BlockingInWorkerRule",
    "BlockingUnderLockRule",
    "BoundaryEscapeRule",
    "HotPathGapRule",
    "CallGraph",
    "ChildGlobalDivergenceRule",
    "ConcurrencyModel",
    "ContractDriftRule",
    "DeadExportRule",
    "ForkUnsafeInheritanceRule",
    "ImportCycleRule",
    "ImportGraph",
    "LockOrderCycleRule",
    "ModuleSummary",
    "ProcessModel",
    "ProjectContext",
    "SharedMemProtocolRule",
    "StreamingContractRule",
    "SysmodelContractRule",
    "SystemConstantLeakRule",
    "SystemDispatchRule",
    "TaintedPersistenceRule",
    "UnguardedSharedWriteRule",
    "build_summary",
    "module_name_for_path",
]
