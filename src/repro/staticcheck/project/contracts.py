"""``contract-drift``: call sites incompatible with the callee's signature.

The dominant silent failure of retrain/serve pipelines is one side of an
intra-package API changing while a caller keeps the old shape — the
Feature Encoder grows a keyword the Classification Model never passes,
or a fetcher drops a parameter the characterizer still supplies.  Python
only surfaces these at call time, which for a cron-driven retrain
workflow means days later.

This rule walks the approximate call graph: every call site whose dotted
callee resolves to a function, method or class defined in the project is
checked against that definition's statically known signature —

* more positional arguments than the callee accepts (no ``*args``),
* a keyword the callee does not declare (no ``**kwargs``),
* a required parameter that is neither passed positionally nor by
  keyword.

Calls using ``*`` / ``**`` splats skip the corresponding check, and
callees whose contract is not statically knowable (decorated functions,
classes with bases or non-dataclass decorators) are never checked, so
every finding is a real incompatibility.
"""

from __future__ import annotations

from typing import Iterator

from repro.staticcheck.findings import Finding
from repro.staticcheck.registry import ProjectRule, register_project

__all__ = ["ContractDriftRule"]


@register_project
class ContractDriftRule(ProjectRule):
    id = "contract-drift"
    description = (
        "call site incompatible with the statically known signature of an "
        "intra-package callee"
    )

    def check(self, project) -> Iterator[Finding]:
        for caller_module, call, resolved in project.call_graph.edges:
            sig = resolved.signature
            if sig is None or not sig.checkable:
                continue
            path = project.summaries[caller_module].path
            where = f"{resolved.summary.module}.{resolved.qualname}"
            label = "class" if sig.kind == "class" else "function"
            nargs, keywords = call["nargs"], call["keywords"]

            if not call["star"] and not sig.vararg and nargs > len(sig.args):
                yield self.finding(
                    path,
                    call["line"],
                    f"{where}() takes at most {len(sig.args)} positional "
                    f"argument{'s' if len(sig.args) != 1 else ''} but "
                    f"{nargs} are passed; the {label} signature at "
                    f"{resolved.summary.path}:{sig.line} has drifted from "
                    "this call site",
                    col=call["col"],
                )
                continue

            if not sig.kwarg:
                known = set(sig.args) | set(sig.kwonly)
                for keyword in keywords:
                    if keyword not in known:
                        yield self.finding(
                            path,
                            call["line"],
                            f"{where}() has no parameter {keyword!r} "
                            f"(signature at {resolved.summary.path}:{sig.line}); "
                            "the call site and the callee have drifted apart",
                            col=call["col"],
                        )

            if not call["star"] and not call["kwstar"]:
                missing = [
                    name
                    for position, name in enumerate(sig.args[: sig.n_required])
                    if position >= nargs and name not in keywords
                ]
                missing += [name for name in sig.kwonly_required if name not in keywords]
                if missing:
                    yield self.finding(
                        path,
                        call["line"],
                        f"{where}() is missing required argument"
                        f"{'s' if len(missing) != 1 else ''} "
                        f"{', '.join(repr(m) for m in missing)} "
                        f"(signature at {resolved.summary.path}:{sig.line})",
                        col=call["col"],
                    )
