"""``tainted-persistence``: non-replayable values flowing into saved state.

Roofline labels are defined by ``op_j > op_r`` (paper §II); if anything
on the path from counters to a persisted model or an evaluation report
depends on an unseeded RNG draw or the wall clock, the retrain cron
produces models that can never be reproduced and reports that can never
be re-derived.  The single-file ``unseeded-rng`` / ``wallclock-timing``
rules flag the draw itself; this rule follows the *value*: an expression
reachable from a taint source (``random.random``, ``time.time``,
unseeded ``default_rng()`` — see
:data:`repro.staticcheck.project.summary.TAINT_SOURCES`) that is passed,
possibly through functions defined in other modules, into a persistence
or reporting sink.

Propagation is a fixpoint over the summaries' function-taint facts: a
function returning a tainted expression taints its callers' values, so a
helper in ``fugaku/`` returning ``time.time()`` is caught when ``core/``
persists its result — the cross-module drift no single-file rule can
see.  Sinks default to the ``repro.mlcore.persistence`` save paths and
``repro.evaluation.reporting`` writers (facade re-exports included) and
are constructor-overridable for tests and other layouts.
"""

from __future__ import annotations

from typing import Iterator

from repro.staticcheck.findings import Finding
from repro.staticcheck.registry import ProjectRule, register_project

__all__ = ["TaintedPersistenceRule", "DEFAULT_SINKS"]

#: Dotted names whose arguments must be replayable.  Matching happens
#: after facade resolution, so ``repro.mlcore.save_model`` hits the
#: ``repro.mlcore.persistence.save_model`` entry.
DEFAULT_SINKS = frozenset(
    {
        "repro.mlcore.persistence.save_model",
        "repro.mlcore.persistence.ModelRegistry.publish",
        "repro.evaluation.reporting.results_to_csv",
        "repro.evaluation.reporting.format_table",
    }
)

_MAX_ROUNDS = 64


@register_project
class TaintedPersistenceRule(ProjectRule):
    id = "tainted-persistence"
    description = (
        "value derived from unseeded RNG or the wall clock flows into a "
        "persistence/report sink; persisted state must be replayable"
    )

    def __init__(self, sinks: frozenset[str] | None = None):
        self.sinks = frozenset(sinks) if sinks is not None else DEFAULT_SINKS

    # -- fixpoint over function taint --------------------------------------

    def _tainted_functions(self, project) -> dict[str, str]:
        """fully-qualified function -> human-readable taint origin."""
        facts: dict[str, dict] = {}
        for name in sorted(project.summaries):
            summary = project.summaries[name]
            for qual, fact in summary.function_taint.items():
                facts[f"{name}.{qual}"] = fact

        tainted: dict[str, str] = {
            fq: fact["direct"] for fq, fact in facts.items() if fact["direct"]
        }
        for _ in range(_MAX_ROUNDS):
            changed = False
            for fq, fact in facts.items():
                if fq in tainted:
                    continue
                for callee in fact["returns_calls"]:
                    resolved = project.resolve(callee)
                    if resolved is None:
                        continue
                    callee_fq = f"{resolved.summary.module}.{resolved.qualname}"
                    if callee_fq in tainted:
                        tainted[fq] = tainted[callee_fq]
                        changed = True
                        break
            if not changed:
                break
        return tainted

    def _sink_name(self, project, callee: str) -> str | None:
        """The sink this callee denotes, chasing facade re-exports."""
        if callee in self.sinks:
            return callee
        resolved = project.resolve(callee)
        if resolved is None:
            return None
        canonical = f"{resolved.summary.module}.{resolved.qualname}"
        return canonical if canonical in self.sinks else None

    def check(self, project) -> Iterator[Finding]:
        tainted = self._tainted_functions(project)
        for name in sorted(project.summaries):
            summary = project.summaries[name]
            for call in summary.calls:
                sink = self._sink_name(project, call["callee"])
                if sink is None:
                    continue
                for _position, kind, detail in call["targs"]:
                    if kind == "source":
                        yield self.finding(
                            summary.path,
                            call["line"],
                            f"value derived from {detail}() reaches the "
                            f"persistence sink {sink}(); seed the generator "
                            "or use a replayable clock so saved state can "
                            "be reproduced",
                            col=call["col"],
                        )
                        break
                    if kind == "call":
                        resolved = project.resolve(detail)
                        if resolved is None:
                            continue
                        fq = f"{resolved.summary.module}.{resolved.qualname}"
                        origin = tainted.get(fq)
                        if origin is None:
                            continue
                        boundary = (
                            " across the module boundary"
                            if resolved.summary.module != name
                            else ""
                        )
                        yield self.finding(
                            summary.path,
                            call["line"],
                            f"{fq}() returns a value tainted by {origin}() "
                            f"which flows{boundary} into the persistence "
                            f"sink {sink}(); persisted state must be "
                            "replayable",
                            col=call["col"],
                        )
                        break
