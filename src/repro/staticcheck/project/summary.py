"""Per-module fact extraction for whole-program analysis.

A :class:`ModuleSummary` is everything the project rules need to know
about one module — resolved imports, import-graph edges, ``__all__``
exports, statically known callable signatures, call sites, taint facts
and suppression directives — extracted in a single AST pass and fully
JSON-serializable, so the incremental cache can serve it without
re-parsing the file.  Nothing in this module touches other modules: all
cross-module reasoning lives in :mod:`repro.staticcheck.project.graph`
and the project rules.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.staticcheck.suppressions import parse_directives

__all__ = [
    "ModuleSummary",
    "SignatureInfo",
    "TAINT_SOURCES",
    "build_import_table",
    "build_summary",
    "module_name_for_path",
]

#: Calls whose return value is non-replayable (hidden global RNG state or
#: the wall clock); the tainted-persistence rule tracks values derived
#: from these across module boundaries.
TAINT_SOURCES = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "random.random",
        "random.randint",
        "random.uniform",
        "random.choice",
        "random.choices",
        "random.sample",
        "random.gauss",
        "random.randrange",
        "random.getrandbits",
        "numpy.random.rand",
        "numpy.random.randn",
        "numpy.random.random",
        "numpy.random.randint",
        "numpy.random.choice",
        "numpy.random.normal",
        "numpy.random.uniform",
        "numpy.random.permutation",
    }
)

#: Unseeded ``default_rng()`` is a taint source only when called bare.
_SEEDABLE_FACTORY = "numpy.random.default_rng"

#: Calls that create a mutual-exclusion primitive.  ``new_lock`` is the
#: sanitizer-aware factory from :mod:`repro.sanitizers`, which wraps the
#: same primitives — code that migrates to it must keep its lock facts.
LOCK_FACTORIES = frozenset(
    {
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
        "repro.sanitizers.new_lock",
        "repro.sanitizers.lockorder.new_lock",
    }
)

#: Constructors that hand a callable to another thread of control.
_THREAD_FACTORIES = frozenset({"threading.Thread", "threading.Timer"})

#: Method names that register a callback with a scheduler/event loop; any
#: plain-name argument of such a call becomes a scheduled entry point.
_SCHEDULER_REGISTRATIONS = frozenset({"every", "add_job", "schedule"})


def module_name_for_path(path: Path) -> tuple[str, bool]:
    """Dotted module name for a file, plus whether it is a package init.

    The package root is found by walking up while ``__init__.py`` exists,
    so ``src/repro/core/server.py`` maps to ``repro.core.server`` without
    any configuration.  Files outside any package map to their bare stem.
    """
    path = Path(path).resolve()
    is_package = path.name == "__init__.py"
    parts: list[str] = [] if is_package else [path.stem]
    current = path.parent
    while (current / "__init__.py").is_file():
        parts.insert(0, current.name)
        parent = current.parent
        if parent == current:  # filesystem root
            break
        current = parent
    return ".".join(parts), is_package


def resolve_relative(module_name: str, is_package: bool, level: int, target: str | None) -> str | None:
    """Absolute dotted name for a ``from ...x import`` statement.

    Returns ``None`` when the relative import climbs above the package
    root (a real ImportError at runtime, and nothing we can resolve).
    """
    if not module_name:
        return None
    base = module_name.split(".")
    if not is_package:
        base = base[:-1]
    drop = level - 1
    if drop > len(base):
        return None
    if drop:
        base = base[:-drop]
    if target:
        base = base + target.split(".")
    return ".".join(base) if base else None


def build_import_table(tree: ast.Module, module_name: str = "", is_package: bool = False) -> dict[str, str]:
    """Local name -> fully qualified origin, for every import in the tree.

    ``import numpy as np`` maps ``np -> numpy``; ``from numpy.random
    import default_rng as rng`` maps ``rng -> numpy.random.default_rng``.
    Relative imports (``from .encoder import FeatureEncoder``) resolve to
    absolute names when the module's own dotted name is known.
    """
    table: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                table[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                origin = node.module
            else:
                origin = resolve_relative(module_name, is_package, node.level, node.module)
            if not origin:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                table[alias.asname or alias.name] = f"{origin}.{alias.name}"
    return table


def dotted_name(node: ast.AST, imports: dict[str, str]) -> str | None:
    """Render ``a.b.c`` chains, resolving the root through ``imports``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(imports.get(node.id, node.id))
    return ".".join(reversed(parts))


@dataclass
class SignatureInfo:
    """Statically known call contract of one function, method or class."""

    name: str
    line: int
    args: list[str] = field(default_factory=list)
    n_required: int = 0
    vararg: bool = False
    kwonly: list[str] = field(default_factory=list)
    kwonly_required: list[str] = field(default_factory=list)
    kwarg: bool = False
    kind: str = "function"  # "function" | "class"
    checkable: bool = True  # False when decorators/bases hide the contract

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "line": self.line,
            "args": self.args,
            "n_required": self.n_required,
            "vararg": self.vararg,
            "kwonly": self.kwonly,
            "kwonly_required": self.kwonly_required,
            "kwarg": self.kwarg,
            "kind": self.kind,
            "checkable": self.checkable,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "SignatureInfo":
        return cls(**doc)


@dataclass
class ModuleSummary:
    """Cacheable whole-module facts for project-level rules."""

    module: str
    path: str
    is_package: bool = False
    imports: dict[str, str] = field(default_factory=dict)
    star_imports: list[str] = field(default_factory=list)
    #: (target dotted name, line, runtime) — runtime=False for imports
    #: under ``if TYPE_CHECKING`` or inside function bodies.
    import_edges: list[tuple[str, int, bool]] = field(default_factory=list)
    #: (name, line) pairs from a literal ``__all__``; None when absent.
    exports: list[tuple[str, int]] | None = None
    defined_names: list[str] = field(default_factory=list)
    functions: dict[str, SignatureInfo] = field(default_factory=dict)
    #: call sites: {line, col, callee, nargs, star, keywords, kwstar, targs}
    #: where targs lists (arg position, "source"|"call", detail) for
    #: arguments carrying a possible taint.
    calls: list[dict] = field(default_factory=list)
    symbol_refs: list[str] = field(default_factory=list)
    #: function qualname -> {"direct": source-or-None, "returns_calls": [...]}
    function_taint: dict[str, dict] = field(default_factory=dict)
    #: suppression directives: {line, rules, covers}
    directives: list[dict] = field(default_factory=list)
    #: lock/thread facts for the concurrency rules (see _ConcurrencyWalker):
    #: {"locks": {id: [kind, line]}, "functions": {qual: {...}}}
    concurrency: dict = field(default_factory=dict)
    #: function qualname -> ``# hotpath:`` annotation text, for the perf
    #: tier's cross-module hot-path-gap rule.
    hotpaths: dict = field(default_factory=dict)
    #: process-boundary facts (spawn sites, start-method pins, handles,
    #: SharedArray lifecycles) for the procs tier — see
    #: :mod:`repro.staticcheck.procs.facts`.
    procs: dict = field(default_factory=dict)
    #: capacity facts (streaming annotations, return scales,
    #: materializing returns) for the streaming-contract rule — see
    #: :mod:`repro.staticcheck.capacity.facts`.
    capacity: dict = field(default_factory=dict)
    #: system-model facts (SystemModel class hierarchy, flagged Fugaku
    #: constants) for the sysmodel contract rules — see
    #: :mod:`repro.staticcheck.sysmodel.facts`.
    sysmodel: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "module": self.module,
            "path": self.path,
            "is_package": self.is_package,
            "imports": self.imports,
            "star_imports": self.star_imports,
            "import_edges": [list(edge) for edge in self.import_edges],
            "exports": [list(e) for e in self.exports] if self.exports is not None else None,
            "defined_names": self.defined_names,
            "functions": {q: sig.to_dict() for q, sig in self.functions.items()},
            "calls": self.calls,
            "symbol_refs": self.symbol_refs,
            "function_taint": self.function_taint,
            "directives": self.directives,
            "concurrency": self.concurrency,
            "hotpaths": self.hotpaths,
            "procs": self.procs,
            "capacity": self.capacity,
            "sysmodel": self.sysmodel,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "ModuleSummary":
        return cls(
            module=doc["module"],
            path=doc["path"],
            is_package=doc["is_package"],
            imports=doc["imports"],
            star_imports=doc["star_imports"],
            import_edges=[tuple(edge) for edge in doc["import_edges"]],
            exports=(
                [tuple(e) for e in doc["exports"]] if doc["exports"] is not None else None
            ),
            defined_names=doc["defined_names"],
            functions={q: SignatureInfo.from_dict(s) for q, s in doc["functions"].items()},
            calls=doc["calls"],
            symbol_refs=doc["symbol_refs"],
            function_taint=doc["function_taint"],
            directives=doc["directives"],
            concurrency=doc.get("concurrency", {}),
            hotpaths=doc.get("hotpaths", {}),
            procs=doc.get("procs", {}),
            capacity=doc.get("capacity", {}),
            sysmodel=doc.get("sysmodel", {}),
        )


# ---------------------------------------------------------------------------
# extraction


def _signature_from_arguments(name: str, line: int, arguments: ast.arguments, *, drop_self: bool) -> SignatureInfo:
    positional = [a.arg for a in arguments.posonlyargs + arguments.args]
    if drop_self and positional:
        positional = positional[1:]
    n_required = len(positional) - len(arguments.defaults)
    kwonly = [a.arg for a in arguments.kwonlyargs]
    kwonly_required = [
        a.arg
        for a, default in zip(arguments.kwonlyargs, arguments.kw_defaults)
        if default is None
    ]
    return SignatureInfo(
        name=name,
        line=line,
        args=positional,
        n_required=max(0, n_required),
        vararg=arguments.vararg is not None,
        kwonly=kwonly,
        kwonly_required=kwonly_required,
        kwarg=arguments.kwarg is not None,
    )


def _is_dataclass_decorator(node: ast.AST, imports: dict[str, str]) -> bool:
    if isinstance(node, ast.Call):
        node = node.func
    name = dotted_name(node, imports)
    return name in ("dataclass", "dataclasses.dataclass")


def _dataclass_signature(cls: ast.ClassDef, imports: dict[str, str]) -> SignatureInfo:
    """Constructor contract synthesized from dataclass field annotations."""
    args: list[str] = []
    n_required = 0
    for stmt in cls.body:
        if not (isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name)):
            continue
        annotation = ast.dump(stmt.annotation)
        if "ClassVar" in annotation or "InitVar" in annotation:
            continue
        args.append(stmt.target.id)
        if stmt.value is None:
            n_required += 1
    return SignatureInfo(name=cls.name, line=cls.lineno, args=args, n_required=n_required, kind="class")


def _class_signature(cls: ast.ClassDef, imports: dict[str, str]) -> SignatureInfo:
    """Constructor contract of a class, or an uncheckable placeholder."""
    is_dataclass = any(_is_dataclass_decorator(d, imports) for d in cls.decorator_list)
    opaque_decorators = [d for d in cls.decorator_list if not _is_dataclass_decorator(d, imports)]
    if cls.bases or cls.keywords or opaque_decorators:
        # Inherited or decorator-synthesized __init__: contract unknown.
        return SignatureInfo(name=cls.name, line=cls.lineno, kind="class", checkable=False)
    for stmt in cls.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name == "__init__":
            if stmt.decorator_list:
                return SignatureInfo(name=cls.name, line=cls.lineno, kind="class", checkable=False)
            sig = _signature_from_arguments(cls.name, cls.lineno, stmt.args, drop_self=True)
            sig.kind = "class"
            return sig
    if is_dataclass:
        return _dataclass_signature(cls, imports)
    return SignatureInfo(name=cls.name, line=cls.lineno, kind="class", checkable=False)


class _ScopeWalker:
    """Single pass over the module collecting calls and taint facts.

    Taint tracking is deliberately approximate and flow-insensitive
    within a scope: a name assigned from a tainted expression stays
    tainted for the rest of the scope.  Each descriptor is a pair —
    ``("source", "time.time")`` for a direct draw from a tainted API,
    ``("call", "repro.x.helper")`` for a value returned by a function
    whose taint is decided later by the cross-module fixpoint.
    """

    def __init__(self, summary: ModuleSummary):
        self.summary = summary
        self.imports = summary.imports

    def walk_module(self, tree: ast.Module) -> None:
        env: dict[str, tuple[str, str]] = {}
        self._walk_body(tree.body, qual="", env=env)

    # -- taint descriptors -------------------------------------------------

    def _expr_taint(self, expr: ast.AST, env: dict[str, tuple[str, str]]) -> tuple[str, str] | None:
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func, self.imports)
                if name in TAINT_SOURCES:
                    return ("source", name)
                if name == _SEEDABLE_FACTORY and not node.args and not node.keywords:
                    return ("source", name)
            elif isinstance(node, ast.Name) and node.id in env:
                return env[node.id]
        # No direct source: fall back to the first resolvable call, whose
        # taint the project fixpoint will decide.
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func, self.imports)
                if name and "." in name and name not in TAINT_SOURCES:
                    return ("call", name)
        return None

    def _record_call(self, call: ast.Call, env: dict[str, tuple[str, str]]) -> None:
        callee = dotted_name(call.func, self.imports)
        if callee is None:
            return
        nargs = sum(1 for a in call.args if not isinstance(a, ast.Starred))
        star = any(isinstance(a, ast.Starred) for a in call.args)
        keywords = [kw.arg for kw in call.keywords if kw.arg is not None]
        kwstar = any(kw.arg is None for kw in call.keywords)
        targs: list[list] = []
        for position, arg in enumerate(list(call.args) + [kw.value for kw in call.keywords]):
            desc = self._expr_taint(arg, env)
            if desc is not None:
                targs.append([position, desc[0], desc[1]])
        self.summary.calls.append(
            {
                "line": call.lineno,
                "col": call.col_offset,
                "callee": callee,
                "nargs": nargs,
                "star": star,
                "keywords": keywords,
                "kwstar": kwstar,
                "targs": targs,
            }
        )

    # -- statement walk ----------------------------------------------------

    _COMPOUND = (ast.If, ast.For, ast.AsyncFor, ast.While, ast.With, ast.AsyncWith, ast.Try)

    def _record_expr_calls(self, expr: ast.AST, env: dict[str, tuple[str, str]]) -> None:
        for call in (n for n in ast.walk(expr) if isinstance(n, ast.Call)):
            self._record_call(call, env)

    def _walk_body(
        self,
        body: list[ast.stmt],
        qual: str,
        env: dict[str, tuple[str, str]],
        returns: list | None = None,
    ) -> None:
        """Walk statements; ``returns`` collects return-taint descriptors."""
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                inner_qual = f"{qual}.{stmt.name}" if qual else stmt.name
                self._walk_function(stmt, inner_qual, dict(env))
            elif isinstance(stmt, ast.ClassDef):
                inner_qual = f"{qual}.{stmt.name}" if qual else stmt.name
                for expr in stmt.bases + [kw.value for kw in stmt.keywords] + stmt.decorator_list:
                    self._record_expr_calls(expr, env)
                self._walk_body(stmt.body, inner_qual, dict(env))
            elif isinstance(stmt, self._COMPOUND):
                # Header expressions (test / iter / context items) carry
                # calls; child statement lists are walked recursively so
                # nothing is recorded twice.
                for child in ast.iter_child_nodes(stmt):
                    if isinstance(child, ast.expr):
                        self._record_expr_calls(child, env)
                    elif isinstance(child, ast.withitem):
                        self._record_expr_calls(child.context_expr, env)
                for block in self._child_blocks(stmt):
                    self._walk_body(block, qual, env, returns)
            else:
                self._walk_simple(stmt, env, returns)

    @staticmethod
    def _child_blocks(stmt: ast.stmt) -> list[list[ast.stmt]]:
        blocks: list[list[ast.stmt]] = []
        for attr in ("body", "orelse", "finalbody"):
            block = getattr(stmt, attr, None)
            if block:
                blocks.append(block)
        for handler in getattr(stmt, "handlers", []):
            blocks.append(handler.body)
        return blocks

    def _walk_simple(self, stmt: ast.stmt, env: dict[str, tuple[str, str]], returns: list | None) -> None:
        self._record_expr_calls(stmt, env)
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            if stmt.value is None:
                return
            desc = self._expr_taint(stmt.value, env)
            targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            for target in targets:
                if isinstance(target, ast.Name):
                    if desc is not None:
                        env[target.id] = desc
                    else:
                        env.pop(target.id, None)
        elif isinstance(stmt, ast.Return) and stmt.value is not None and returns is not None:
            desc = self._expr_taint(stmt.value, env)
            if desc is not None:
                returns.append(desc)

    def _walk_function(self, fn: ast.FunctionDef | ast.AsyncFunctionDef, qual: str, env: dict[str, tuple[str, str]]) -> None:
        returns: list[tuple[str, str]] = []
        self._walk_body(fn.body, qual, env, returns)
        returns_direct = next((d for k, d in returns if k == "source"), None)
        returns_calls = sorted({d for k, d in returns if k == "call"})
        if returns_direct is not None or returns_calls:
            self.summary.function_taint[qual] = {
                "direct": returns_direct,
                "returns_calls": returns_calls,
            }


def _collect_import_edges(summary: ModuleSummary, tree: ast.Module) -> None:
    """Import-graph edges, tagged runtime vs. lazy/type-checking only."""

    def edge_targets(node: ast.Import | ast.ImportFrom) -> list[str]:
        targets: list[str] = []
        if isinstance(node, ast.Import):
            targets.extend(alias.name for alias in node.names)
        else:
            if node.level == 0:
                origin = node.module
            else:
                origin = resolve_relative(summary.module, summary.is_package, node.level, node.module)
            if origin:
                targets.append(origin)
                targets.extend(
                    f"{origin}.{alias.name}" for alias in node.names if alias.name != "*"
                )
                if any(alias.name == "*" for alias in node.names):
                    summary.star_imports.append(origin)
        return targets

    def is_type_checking_guard(test: ast.AST) -> bool:
        name = dotted_name(test, summary.imports)
        return name in ("TYPE_CHECKING", "typing.TYPE_CHECKING")

    def walk(stmts: list[ast.stmt], runtime: bool) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.Import, ast.ImportFrom)):
                for target in edge_targets(stmt):
                    summary.import_edges.append((target, stmt.lineno, runtime))
            elif isinstance(stmt, ast.If):
                guard_off = is_type_checking_guard(stmt.test)
                walk(stmt.body, runtime and not guard_off)
                walk(stmt.orelse, runtime)
            elif isinstance(stmt, ast.Try):
                walk(stmt.body, runtime)
                for handler in stmt.handlers:
                    walk(handler.body, runtime)
                walk(stmt.orelse, runtime)
                walk(stmt.finalbody, runtime)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                walk(stmt.body, False if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)) else runtime)
            elif isinstance(stmt, (ast.With, ast.AsyncWith, ast.For, ast.AsyncFor, ast.While)):
                walk(stmt.body, runtime)

    walk(tree.body, True)


def _collect_definitions(summary: ModuleSummary, tree: ast.Module) -> None:
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            summary.defined_names.append(stmt.name)
            sig = _signature_from_arguments(stmt.name, stmt.lineno, stmt.args, drop_self=False)
            if stmt.decorator_list:
                sig.checkable = False
            summary.functions[stmt.name] = sig
        elif isinstance(stmt, ast.ClassDef):
            summary.defined_names.append(stmt.name)
            summary.functions[stmt.name] = _class_signature(stmt, summary.imports)
            for inner in stmt.body:
                if isinstance(inner, ast.FunctionDef) and inner.name != "__init__":
                    method = _signature_from_arguments(
                        f"{stmt.name}.{inner.name}", inner.lineno, inner.args, drop_self=True
                    )
                    if inner.decorator_list:
                        method.checkable = False
                    summary.functions[f"{stmt.name}.{inner.name}"] = method
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    summary.defined_names.append(target.id)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            summary.defined_names.append(stmt.target.id)


def _collect_exports(summary: ModuleSummary, tree: ast.Module) -> None:
    for stmt in tree.body:
        if not isinstance(stmt, ast.Assign):
            continue
        for target in stmt.targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                if isinstance(stmt.value, (ast.List, ast.Tuple)) and all(
                    isinstance(e, ast.Constant) and isinstance(e.value, str)
                    for e in stmt.value.elts
                ):
                    summary.exports = [(e.value, e.lineno) for e in stmt.value.elts]


def _collect_symbol_refs(summary: ModuleSummary, tree: ast.Module) -> None:
    refs: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute):
            name = dotted_name(node, summary.imports)
            if name and "." in name:
                refs.add(name)
        elif isinstance(node, ast.Name) and node.id in summary.imports:
            origin = summary.imports[node.id]
            if "." in origin:
                refs.add(origin)
    summary.symbol_refs = sorted(refs)


# ---------------------------------------------------------------------------
# concurrency facts


#: Receiver methods that mutate their receiver in place; a call like
#: ``self.cache.update(...)`` is a shared-state write exactly like
#: ``self.cache[k] = v``.
_MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "update",
        "add",
        "clear",
        "pop",
        "popitem",
        "setdefault",
        "remove",
        "discard",
        "insert",
    }
)


class _ConcurrencyWalker:
    """Single pass collecting lock/thread facts for the concurrency rules.

    Per function (dotted qualname, ``""`` for module level) the walker
    records, with the *candidate* lock set held at each site:

    * ``acquires`` — ``with lock:`` items and ``lock.acquire()`` calls;
    * ``writes`` — stores to ``self.attr`` / declared globals (including
      subscript stores and in-place mutator methods like ``.update()``);
    * ``calls`` — every call site, with a flag marking receivers that are
      plain local names (candidates for unique-method resolution);
    * ``thread_targets`` / ``registrations`` — callables handed to
      ``threading.Thread``/``Timer`` or scheduler ``.every()``-style APIs;
    * ``roles`` — ``["handler"]`` for ``@app.route(...)``-decorated defs.

    Lock identity is name-based: ``self._lock`` in class ``C`` of module
    ``M`` is ``M.C._lock``; a module-level ``LOCK`` is ``M.LOCK``; a lock
    local to function ``f`` is ``M.f.<name>``.  Everything here is a
    *candidate* — the rules keep only identities that match a recorded
    lock creation somewhere in the project, so ``with self._shm:`` never
    masquerades as a lock acquisition.  Held-lock tracking is
    flow-insensitive within a function: ``with`` scopes nest exactly,
    ``.acquire()`` holds until ``.release()`` or the end of the function.
    """

    def __init__(self, summary: ModuleSummary):
        self.summary = summary
        self.imports = summary.imports
        self.module = summary.module
        self.facts: dict = {"locks": {}, "functions": {}}
        self._module_names = set(summary.defined_names)

    def walk(self, tree: ast.Module) -> None:
        self._walk_body(tree.body, qual="", cls="", held=[], local_locks={}, global_names=set())
        functions = {
            qual: {k: v for k, v in fn.items() if v}
            for qual, fn in self.facts["functions"].items()
        }
        self.facts["functions"] = {q: fn for q, fn in functions.items() if fn}
        if self.facts["locks"] or self.facts["functions"]:
            self.summary.concurrency = self.facts

    # -- bookkeeping -------------------------------------------------------

    def _fn(self, qual: str) -> dict:
        return self.facts["functions"].setdefault(
            qual,
            {
                "roles": [],
                "acquires": [],
                "writes": [],
                "calls": [],
                "thread_targets": [],
                "registrations": [],
            },
        )

    def _lock_id(self, expr: ast.AST, qual: str, cls: str, local_locks: dict[str, str]) -> str | None:
        """Candidate lock identity for a Name / single-level attribute."""
        if isinstance(expr, ast.Name):
            if expr.id in local_locks:
                return local_locks[expr.id]
            origin = self.imports.get(expr.id)
            if origin and "." in origin:
                return origin
            return f"{self.module}.{expr.id}"
        if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
            if expr.value.id == "self" and cls:
                return f"{self.module}.{cls}.{expr.attr}"
            root = self.imports.get(expr.value.id)
            if root:
                return f"{root}.{expr.attr}"
        return None

    # -- calls -------------------------------------------------------------

    def _record_call(self, call: ast.Call, qual: str, cls: str, held: list[str], local_locks: dict[str, str]) -> None:
        callee = dotted_name(call.func, self.imports)
        fn = self._fn(qual)
        if callee is not None:
            base = call.func
            while isinstance(base, ast.Attribute):
                base = base.value
            root = base.id if isinstance(base, ast.Name) else ""
            # A dotted call on a plain local name (``framework.train(...)``)
            # cannot be resolved through imports; mark it as a candidate
            # for unique-method-name resolution in the rules.
            local_receiver = (
                "." in callee
                and root != "self"
                and root not in self.imports
                and root not in self._module_names
            )
            fn["calls"].append([callee, call.lineno, list(held), local_receiver])
            if callee in _THREAD_FACTORIES:
                self._record_thread_target(call, fn)
            if callee.rsplit(".", 1)[-1] in _SCHEDULER_REGISTRATIONS and "." in callee:
                self._record_registrations(call, fn)
        if isinstance(call.func, ast.Attribute):
            if call.func.attr == "acquire":
                lock = self._lock_id(call.func.value, qual, cls, local_locks)
                if lock is not None:
                    fn["acquires"].append([lock, call.lineno, list(held)])
                    held.append(lock)
            elif call.func.attr == "release":
                lock = self._lock_id(call.func.value, qual, cls, local_locks)
                if lock is not None and lock in held:
                    held.remove(lock)
            elif call.func.attr in _MUTATOR_METHODS:
                target = self._write_target_of(call.func.value, qual, cls)
                if target is not None:
                    fn["writes"].append([target, call.lineno, list(held)])

    def _record_thread_target(self, call: ast.Call, fn: dict) -> None:
        candidates: list[ast.AST] = []
        for kw in call.keywords:
            if kw.arg in ("target", "function"):
                candidates.append(kw.value)
        if not candidates and len(call.args) >= 2:
            candidates.append(call.args[1])  # Timer(interval, fn)
        for expr in candidates:
            name = dotted_name(expr, self.imports)
            if name:
                fn["thread_targets"].append([name, call.lineno])

    def _record_registrations(self, call: ast.Call, fn: dict) -> None:
        for expr in list(call.args) + [kw.value for kw in call.keywords]:
            if isinstance(expr, (ast.Name, ast.Attribute)):
                name = dotted_name(expr, self.imports)
                if name:
                    fn["registrations"].append([name, call.lineno])

    def _record_expr(self, expr: ast.AST, qual: str, cls: str, held: list[str], local_locks: dict[str, str]) -> None:
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                self._record_call(node, qual, cls, held, local_locks)

    # -- writes ------------------------------------------------------------

    def _write_target_of(self, node: ast.AST, qual: str, cls: str) -> str | None:
        """Shared-state identity of a store/mutation receiver, if any."""
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            if node.value.id == "self" and cls:
                return f"{self.module}.{cls}.{node.attr}"
            return None
        if isinstance(node, ast.Name) and qual and node.id in self._module_names:
            return f"{self.module}.{node.id}"
        return None

    def _record_writes(self, target: ast.AST, line: int, qual: str, cls: str, held: list[str], global_names: set[str]) -> None:
        fn = self._fn(qual)
        seen: set[str] = set()
        for node in ast.walk(target):
            tid: str | None = None
            if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
                if node.value.id == "self" and cls:
                    tid = f"{self.module}.{cls}.{node.attr}"
            elif isinstance(node, ast.Subscript):
                tid = self._write_target_of(node.value, qual, cls)
            elif isinstance(node, ast.Name) and node.id in global_names:
                tid = f"{self.module}.{node.id}"
            if tid is not None and tid not in seen:
                seen.add(tid)
                fn["writes"].append([tid, line, list(held)])

    # -- statements --------------------------------------------------------

    def _walk_body(
        self,
        body: list[ast.stmt],
        qual: str,
        cls: str,
        held: list[str],
        local_locks: dict[str, str],
        global_names: set[str],
    ) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                inner = f"{qual}.{stmt.name}" if qual else stmt.name
                fn = self._fn(inner)
                for dec in stmt.decorator_list:
                    target = dec.func if isinstance(dec, ast.Call) else dec
                    name = dotted_name(target, self.imports)
                    if name and name.rsplit(".", 1)[-1] == "route":
                        fn["roles"].append("handler")
                    self._record_expr(dec, qual, cls, held, local_locks)
                inner_globals = {
                    n
                    for node in ast.walk(stmt)
                    if isinstance(node, ast.Global)
                    for n in node.names
                }
                self._walk_body(stmt.body, inner, cls, [], dict(local_locks), inner_globals)
            elif isinstance(stmt, ast.ClassDef):
                inner = f"{qual}.{stmt.name}" if qual else stmt.name
                for expr in stmt.bases + [kw.value for kw in stmt.keywords] + stmt.decorator_list:
                    self._record_expr(expr, qual, cls, held, local_locks)
                self._walk_body(stmt.body, inner, stmt.name, held, dict(local_locks), global_names)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                self._walk_with(stmt, qual, cls, held, local_locks, global_names)
            elif isinstance(stmt, (ast.If, ast.While)):
                self._record_expr(stmt.test, qual, cls, held, local_locks)
                self._walk_body(stmt.body, qual, cls, held, local_locks, global_names)
                self._walk_body(stmt.orelse, qual, cls, held, local_locks, global_names)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._record_expr(stmt.iter, qual, cls, held, local_locks)
                self._record_writes(stmt.target, stmt.lineno, qual, cls, held, global_names)
                self._walk_body(stmt.body, qual, cls, held, local_locks, global_names)
                self._walk_body(stmt.orelse, qual, cls, held, local_locks, global_names)
            elif isinstance(stmt, ast.Try):
                self._walk_body(stmt.body, qual, cls, held, local_locks, global_names)
                for handler in stmt.handlers:
                    self._walk_body(handler.body, qual, cls, held, local_locks, global_names)
                self._walk_body(stmt.orelse, qual, cls, held, local_locks, global_names)
                self._walk_body(stmt.finalbody, qual, cls, held, local_locks, global_names)
            else:
                self._walk_simple(stmt, qual, cls, held, local_locks, global_names)

    def _walk_with(
        self,
        stmt: ast.With | ast.AsyncWith,
        qual: str,
        cls: str,
        held: list[str],
        local_locks: dict[str, str],
        global_names: set[str],
    ) -> None:
        acquired: list[str] = []
        for item in stmt.items:
            self._record_expr(item.context_expr, qual, cls, held, local_locks)
            if isinstance(item.context_expr, (ast.Name, ast.Attribute)):
                lock = self._lock_id(item.context_expr, qual, cls, local_locks)
                if lock is not None:
                    self._fn(qual)["acquires"].append([lock, item.context_expr.lineno, list(held)])
                    held.append(lock)
                    acquired.append(lock)
        self._walk_body(stmt.body, qual, cls, held, local_locks, global_names)
        for lock in reversed(acquired):
            if lock in held:
                held.remove(lock)

    def _walk_simple(
        self,
        stmt: ast.stmt,
        qual: str,
        cls: str,
        held: list[str],
        local_locks: dict[str, str],
        global_names: set[str],
    ) -> None:
        self._record_expr(stmt, qual, cls, held, local_locks)
        if not isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            return
        targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        value = stmt.value
        factory = None
        if isinstance(value, ast.Call):
            name = dotted_name(value.func, self.imports)
            if name in LOCK_FACTORIES:
                factory = name
        if factory is not None:
            kind = factory.rsplit(".", 1)[-1]
            for target in targets:
                lock_id: str | None = None
                if isinstance(target, ast.Name):
                    if qual:
                        lock_id = f"{self.module}.{qual}.{target.id}"
                        local_locks[target.id] = lock_id
                    else:
                        lock_id = f"{self.module}.{target.id}"
                elif (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and cls
                ):
                    lock_id = f"{self.module}.{cls}.{target.attr}"
                if lock_id is not None:
                    self.facts["locks"].setdefault(lock_id, [kind, stmt.lineno])
            return
        for target in targets:
            self._record_writes(target, stmt.lineno, qual, cls, held, global_names)


def build_summary(path: str, source: str, tree: ast.Module, module_name: str | None = None, is_package: bool | None = None) -> ModuleSummary:
    """Extract the whole :class:`ModuleSummary` for one parsed module."""
    if module_name is None or is_package is None:
        module_name, is_package = module_name_for_path(Path(path))
    summary = ModuleSummary(module=module_name, path=path, is_package=is_package)
    summary.imports = build_import_table(tree, module_name, is_package)
    _collect_import_edges(summary, tree)
    _collect_definitions(summary, tree)
    _collect_exports(summary, tree)
    _collect_symbol_refs(summary, tree)
    _ScopeWalker(summary).walk_module(tree)
    _ConcurrencyWalker(summary).walk(tree)
    # Deferred imports: perf.hotpath and procs.rules register project
    # rules on import, and pulling them in at module scope would tangle
    # package init order.
    from repro.staticcheck.capacity.facts import collect_capacity_facts
    from repro.staticcheck.perf.hotpath import annotated_quals
    from repro.staticcheck.procs.facts import collect_procs_facts
    from repro.staticcheck.sysmodel.facts import collect_sysmodel_facts

    summary.hotpaths = annotated_quals(tree, source)
    collect_procs_facts(summary, tree)
    collect_capacity_facts(summary, tree, source)
    collect_sysmodel_facts(summary, tree, source)
    summary.directives = [
        {"line": d.line, "rules": sorted(d.rule_ids), "covers": list(d.covers)}
        for d in parse_directives(source)
    ]
    return summary
