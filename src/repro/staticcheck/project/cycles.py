"""``import-cycle``: circular runtime imports inside the package.

Import cycles make module initialization order-dependent: whichever
module happens to be imported first sees a half-initialized partner, and
the failure mode (AttributeError on a module object) appears far from
the cause.  MCBound's layering (fetcher -> encoder -> model -> server)
must stay acyclic for the retrain/serve workflows to be loadable from
any entry point.

Only *runtime* edges count: imports under ``if TYPE_CHECKING`` and
imports inside function bodies are the sanctioned ways to break a cycle,
so they are excluded from the graph.  One finding is reported per cycle,
at the first cycle edge of its alphabetically first member.
"""

from __future__ import annotations

from typing import Iterator

from repro.staticcheck.findings import Finding
from repro.staticcheck.registry import ProjectRule, register_project

__all__ = ["ImportCycleRule"]


@register_project
class ImportCycleRule(ProjectRule):
    id = "import-cycle"
    description = (
        "circular runtime imports between package modules; break the cycle "
        "or defer one edge into a function or TYPE_CHECKING block"
    )

    def check(self, project) -> Iterator[Finding]:
        graph = project.import_graph
        for component in graph.runtime_cycles():
            walk = graph.cycle_path(component)
            anchor = component[0]
            summary = project.summaries[anchor]
            line = graph.edge_line(anchor, walk[1]) if len(walk) > 1 else 1
            yield self.finding(
                summary.path,
                line,
                f"circular import: {' -> '.join(walk)}; initialization "
                "becomes order-dependent — move one edge into a function "
                "body or a TYPE_CHECKING block",
            )
