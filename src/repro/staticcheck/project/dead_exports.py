"""``dead-export``: ``__all__`` symbols nothing ever imports.

``__all__`` is the package's advertised surface; an entry that no module
in the package, no test, no benchmark and no example ever imports is
either dead code or an API that silently fell out of use — both worth a
decision rather than a slow drift (the single-file ``export-drift`` rule
checks that ``__all__`` entries *exist*; this one checks that they are
*alive*).

Only symbols **defined** in the module are considered: package
``__init__`` facades whose ``__all__`` re-lists names imported from
submodules are exempt, because external consumers of the installed
package — invisible to this analysis — are exactly who those facades
serve.  Usage is collected from every scanned module plus the
reference-only files (``--reference``), counting ``from m import name``,
dotted ``m.name`` references and ``from m import *``.
"""

from __future__ import annotations

from typing import Iterator

from repro.staticcheck.findings import Finding
from repro.staticcheck.registry import ProjectRule, register_project

__all__ = ["DeadExportRule"]


@register_project
class DeadExportRule(ProjectRule):
    id = "dead-export"
    description = (
        "__all__ symbol defined here but never imported by any package "
        "module, test, benchmark or example"
    )

    @staticmethod
    def _usage(project) -> tuple[set[str], set[str]]:
        """(dotted symbol references, star-imported modules) project-wide."""
        uses: set[str] = set()
        stars: set[str] = set()
        for summary in project.summaries.values():
            uses.update(summary.imports.values())
            uses.update(summary.symbol_refs)
            stars.update(summary.star_imports)
        for reference in project.reference_usage:
            uses.update(reference["uses"])
            stars.update(reference["stars"])
        return uses, stars

    def check(self, project) -> Iterator[Finding]:
        uses, stars = self._usage(project)
        for name in sorted(project.summaries):
            summary = project.summaries[name]
            if not summary.exports or name in stars:
                continue
            defined = set(summary.defined_names)
            for symbol, line in summary.exports:
                if symbol not in defined:
                    continue  # re-export facade entry; see module docstring
                target = f"{name}.{symbol}"
                if any(u == target or u.startswith(target + ".") for u in uses):
                    continue
                yield self.finding(
                    summary.path,
                    line,
                    f"__all__ exports {symbol!r} but nothing in the package, "
                    "tests, benchmarks or examples imports it; delete it, "
                    "use it, or drop it from __all__",
                )
