"""Concurrency rule family: races between the retrain and serve paths.

MCBound's online deployment is concurrent by construction — a threaded
HTTP server handles inference requests while a cron-scheduled Training
Workflow refreshes the shared model state — so the linter must reason
about thread boundaries, not just sequential correctness.  Three rules
share one :class:`ConcurrencyModel` built from the per-module lock/thread
facts (:class:`~repro.staticcheck.project.summary.ModuleSummary`
``concurrency``):

* ``lock-order-cycle`` — two locks are acquired in opposite nested order
  on different code paths (directly or through project calls made while
  a lock is held); whichever interleaving loses, the process deadlocks.
* ``unguarded-shared-write`` — an attribute or module global is mutated
  from two or more distinct thread-boundary entry points (HTTP handlers,
  ``threading.Thread`` targets, scheduler-registered callbacks) with no
  lock common to every write site.
* ``blocking-under-lock`` — I/O, ``parallel_map``/``run_spmd`` fan-out,
  or model (re)training invoked while a lock is held, stalling every
  competing thread for the duration.

Entry-point reachability and lock-order propagation walk an approximate
function-level call graph: statically resolvable dotted names, ``self.``
method calls within the defining class, and — for calls on plain local
receivers like ``framework.train(...)`` — a unique-method-name match
against every class in the project (applied only when exactly one class
defines the method, so it cannot mislink).
"""

from __future__ import annotations

from typing import Iterator

from repro.staticcheck.findings import Finding
from repro.staticcheck.registry import ProjectRule, register_project

__all__ = [
    "BlockingUnderLockRule",
    "ConcurrencyModel",
    "LockOrderCycleRule",
    "UnguardedSharedWriteRule",
]

#: Dotted callees that block the calling thread on external progress.
BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "urllib.request.urlopen",
        "socket.create_connection",
        "requests.get",
        "requests.post",
        "requests.request",
    }
)

#: Path-object I/O: any receiver, these method names read/write files.
_BLOCKING_SUFFIXES = (".read_text", ".write_text", ".read_bytes", ".write_bytes")

#: Fan-out primitives: holding a lock across them serializes the fan-out.
_FANOUT_BASENAMES = frozenset({"parallel_map", "run_spmd"})

#: Project callees that are model (re)training when resolved in-package.
_RETRAIN_BASENAMES = frozenset({"train", "training", "fit", "partial_fit", "partial_fit_idf"})

#: Lock kinds that deadlock when re-acquired by their holding thread.
_NON_REENTRANT_KINDS = frozenset({"Lock", "Semaphore", "BoundedSemaphore"})


class ConcurrencyModel:
    """Whole-program lock/thread model assembled from module summaries.

    Built lazily by the first concurrency rule that runs and shared via
    the :class:`ProjectContext` (the rules attach it to the context), so
    the call-graph closure is computed once per run.
    """

    def __init__(self, project) -> None:
        self.project = project
        #: lock id -> (kind, path, line) over every module
        self.locks: dict[str, tuple[str, str, int]] = {}
        #: function full name -> facts dict
        self.funcs: dict[str, dict] = {}
        #: function full name -> defining file path
        self.paths: dict[str, str] = {}
        #: function full name -> (module, enclosing class name or "")
        self.homes: dict[str, tuple[str, str]] = {}
        #: every statically known callable (facts or signature): full names
        self.known: set[str] = set()
        #: method basename -> full names of Class.method definitions
        self.method_index: dict[str, set[str]] = {}
        self._build_tables()
        self.edges = self._build_edges()
        self.roots = self._find_roots()
        self.roots_reaching = self._reachability()
        self.acquired_closure = self._acquired_closure()

    # -- assembly ----------------------------------------------------------

    def _build_tables(self) -> None:
        for module in sorted(self.project.summaries):
            summary = self.project.summaries[module]
            facts = summary.concurrency or {}
            for lock_id in sorted(facts.get("locks", {})):
                kind, line = facts["locks"][lock_id]
                self.locks.setdefault(lock_id, (kind, summary.path, line))
            classes = {
                qual for qual, sig in summary.functions.items() if sig.kind == "class"
            }
            for qual in sorted(facts.get("functions", {})):
                if not qual:
                    continue  # module-level statements run once, at import
                full = f"{module}.{qual}"
                self.funcs[full] = facts["functions"][qual]
                self.paths[full] = summary.path
                head = qual.split(".", 1)[0]
                self.homes[full] = (module, head if head in classes else "")
                self.known.add(full)
            for qual in summary.functions:
                full = f"{module}.{qual}"
                self.known.add(full)
                self.paths.setdefault(full, summary.path)
                head = qual.split(".", 1)[0]
                self.homes.setdefault(full, (module, head if head in classes else ""))
                if "." in qual:
                    basename = qual.rsplit(".", 1)[-1]
                    self.method_index.setdefault(basename, set()).add(full)

    def resolve_callee(self, callee: str, caller: str, local_receiver: bool = False) -> str | None:
        """Full name of a call target, or None when not statically known."""
        module, cls = self.homes.get(caller, ("", ""))
        if callee.startswith("self."):
            rest = callee[5:]
            if "." not in rest and cls:
                candidate = f"{module}.{cls}.{rest}"
                if candidate in self.known:
                    return candidate
            return None
        if "." not in callee:
            candidate = f"{module}.{callee}"
            return candidate if candidate in self.known else None
        resolved = self.project.resolve(callee)
        if resolved is not None and resolved.qualname:
            candidate = f"{resolved.summary.module}.{resolved.qualname}"
            if candidate in self.known:
                return candidate
        if local_receiver:
            matches = self.method_index.get(callee.rsplit(".", 1)[-1], set())
            if len(matches) == 1:
                return next(iter(matches))
        return None

    def _build_edges(self) -> dict[str, set[str]]:
        edges: dict[str, set[str]] = {}
        for full in sorted(self.funcs):
            out: set[str] = set()
            for callee, _line, _held, local_receiver in self.funcs[full].get("calls", []):
                target = self.resolve_callee(callee, full, local_receiver)
                if target is not None and target != full:
                    out.add(target)
            edges[full] = out
        return edges

    def _find_roots(self) -> dict[str, str]:
        """Entry points that run on their own thread of control.

        Maps the function's full name to a human-readable side label:
        ``handler:`` for request handlers (each runs on a server thread),
        ``thread:`` for ``threading.Thread``/``Timer`` targets, and
        ``scheduled:`` for scheduler-registered callbacks.
        """
        roots: dict[str, str] = {}
        for full in sorted(self.funcs):
            facts = self.funcs[full]
            if "handler" in facts.get("roles", []):
                roots[full] = f"handler:{full.rsplit('.', 1)[-1]}"
            for name, _line in facts.get("thread_targets", []):
                target = self.resolve_callee(name, full, local_receiver=True)
                if target is not None:
                    roots.setdefault(target, f"thread:{target.rsplit('.', 1)[-1]}")
            for name, _line in facts.get("registrations", []):
                target = self.resolve_callee(name, full, local_receiver=True)
                if target is not None:
                    roots.setdefault(target, f"scheduled:{target.rsplit('.', 1)[-1]}")
        return roots

    def _reachability(self) -> dict[str, set[str]]:
        """function full name -> labels of every root that can reach it."""
        reaching: dict[str, set[str]] = {}
        for root in sorted(self.roots):
            label = self.roots[root]
            queue = [root]
            seen = {root}
            while queue:
                node = queue.pop()
                reaching.setdefault(node, set()).add(label)
                for succ in sorted(self.edges.get(node, ())):
                    if succ not in seen:
                        seen.add(succ)
                        queue.append(succ)
        return reaching

    def _acquired_closure(self) -> dict[str, set[str]]:
        """Locks each function may acquire, directly or through calls."""
        direct: dict[str, set[str]] = {}
        for full, facts in self.funcs.items():
            direct[full] = {
                lock for lock, _line, _held in facts.get("acquires", []) if lock in self.locks
            }
        closure = {full: set(acquired) for full, acquired in direct.items()}
        changed = True
        while changed:
            changed = False
            for full in sorted(closure):
                for succ in sorted(self.edges.get(full, ())):
                    extra = closure.get(succ, set()) - closure[full]
                    if extra:
                        closure[full] |= extra
                        changed = True
        return closure

    def held_locks(self, held: list[str]) -> list[str]:
        """Filter a candidate held set down to real (created) locks."""
        return [lock for lock in held if lock in self.locks]


def _model_for(project) -> ConcurrencyModel:
    model = getattr(project, "_concurrency_model", None)
    if model is None:
        model = ConcurrencyModel(project)
        project._concurrency_model = model
    return model


def _short(lock_id: str) -> str:
    """Human-sized lock name: the last two dotted segments."""
    return ".".join(lock_id.rsplit(".", 2)[-2:])


@register_project
class LockOrderCycleRule(ProjectRule):
    id = "lock-order-cycle"
    description = (
        "locks are acquired in inconsistent nested order across the "
        "project; one interleaving of the racing threads deadlocks"
    )

    def check(self, project) -> Iterator[Finding]:
        model = _model_for(project)
        #: (outer, inner) -> (path, line) of the first witness site
        edges: dict[tuple[str, str], tuple[str, int]] = {}

        def add_edge(outer: str, inner: str, path: str, line: int) -> None:
            key = (outer, inner)
            if key not in edges or (path, line) < edges[key]:
                edges[key] = (path, line)

        for full in sorted(model.funcs):
            facts = model.funcs[full]
            path = model.paths[full]
            for lock, line, held in facts.get("acquires", []):
                if lock not in model.locks:
                    continue
                for outer in model.held_locks(held):
                    add_edge(outer, lock, path, line)
                kind = model.locks[lock][0]
                if lock in held and kind in _NON_REENTRANT_KINDS:
                    yield self.finding(
                        path,
                        line,
                        f"non-reentrant {kind} '{_short(lock)}' is acquired "
                        "while already held by this code path; the thread "
                        "deadlocks against itself — use an RLock or drop "
                        "the nested acquisition",
                    )
            for callee, line, held, local_receiver in facts.get("calls", []):
                outers = model.held_locks(held)
                if not outers:
                    continue
                target = model.resolve_callee(callee, full, local_receiver)
                if target is None:
                    continue
                for inner in sorted(model.acquired_closure.get(target, ())):
                    for outer in outers:
                        if outer != inner:
                            add_edge(outer, inner, path, line)

        for component in _lock_cycles(edges):
            walk = component + [component[0]]
            witnesses = []
            for outer, inner in zip(walk, walk[1:]):
                path, line = edges[(outer, inner)]
                witnesses.append(f"{_short(outer)} then {_short(inner)} at {path}:{line}")
            anchor_path, anchor_line = edges[(walk[0], walk[1])]
            yield self.finding(
                anchor_path,
                anchor_line,
                "lock ordering cycle: "
                + " -> ".join(_short(lock) for lock in walk)
                + " ("
                + "; ".join(witnesses)
                + "); pick one global acquisition order for these locks",
            )


def _lock_cycles(edges: dict[tuple[str, str], tuple[str, int]]) -> list[list[str]]:
    """Cyclic lock-order components as concrete walks, deterministically.

    Tarjan over sorted nodes/successors (mirroring
    :meth:`~repro.staticcheck.project.graph.ImportGraph.runtime_cycles`),
    then a greedy walk through each component starting at its
    alphabetically first member.
    """
    successors: dict[str, list[str]] = {}
    for outer, inner in sorted(edges):
        successors.setdefault(outer, []).append(inner)
        successors.setdefault(inner, [])

    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    counter = 0
    components: list[list[str]] = []
    for root in sorted(successors):
        if root in index:
            continue
        work = [(root, iter(successors[root]))]
        index[root] = low[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, succ_iter = work[-1]
            advanced = False
            for succ in succ_iter:
                if succ not in index:
                    index[succ] = low[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(successors[succ])))
                    advanced = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1:
                    components.append(sorted(component))

    walks: list[list[str]] = []
    for component in sorted(components):
        members = set(component)
        walk = [component[0]]
        seen = {component[0]}
        node = component[0]
        while True:
            nexts = [s for s in successors[node] if s in members and (node, s) in edges]
            target = next(
                (s for s in nexts if s == walk[0] and len(walk) > 1),
                next((s for s in nexts if s not in seen), None),
            )
            if target is None or target == walk[0]:
                break
            walk.append(target)
            seen.add(target)
            node = target
        walks.append(walk)
    return walks


@register_project
class UnguardedSharedWriteRule(ProjectRule):
    id = "unguarded-shared-write"
    description = (
        "shared state is mutated from two or more thread-boundary entry "
        "points (handlers, thread targets, scheduled callbacks) with no "
        "common lock"
    )

    def check(self, project) -> Iterator[Finding]:
        model = _model_for(project)
        #: target id -> list of (path, line, held lock frozenset, root labels)
        sites: dict[str, list[tuple[str, int, frozenset[str], set[str]]]] = {}
        for full in sorted(model.funcs):
            roots = model.roots_reaching.get(full)
            if not roots:
                continue  # not reachable from any concurrent entry point
            path = model.paths[full]
            for target, line, held in model.funcs[full].get("writes", []):
                if target in model.locks:
                    continue  # assigning the lock attribute itself
                sites.setdefault(target, []).append(
                    (path, line, frozenset(model.held_locks(held)), roots)
                )
        for target in sorted(sites):
            writes = sorted(sites[target], key=lambda s: (s[0], s[1]))
            all_roots: set[str] = set()
            for _path, _line, _held, roots in writes:
                all_roots |= roots
            if len(all_roots) < 2:
                continue  # single entry point: no cross-thread write pair
            common = frozenset.intersection(*(held for _p, _l, held, _r in writes))
            if common:
                continue
            path, line, _held, _roots = writes[0]
            yield self.finding(
                path,
                line,
                f"'{_short(target)}' is written from {len(all_roots)} "
                f"concurrent entry points ({', '.join(sorted(all_roots))}) "
                f"across {len(writes)} site(s) with no common lock; guard "
                "every write with one shared lock or confine the state to "
                "a single thread",
            )


@register_project
class BlockingUnderLockRule(ProjectRule):
    id = "blocking-under-lock"
    description = (
        "I/O, parallel fan-out or model (re)training runs while a lock is "
        "held, stalling every competing thread"
    )

    def _blocking_reason(self, model: ConcurrencyModel, callee: str, caller: str, local_receiver: bool) -> str | None:
        basename = callee.rsplit(".", 1)[-1]
        if callee in BLOCKING_CALLS or callee == "open":
            return f"'{callee}' blocks on I/O or the clock"
        if callee.endswith(_BLOCKING_SUFFIXES):
            return f"'{callee}' performs file I/O"
        if basename in _FANOUT_BASENAMES:
            return f"'{basename}' fans work out to a pool"
        target = model.resolve_callee(callee, caller, local_receiver)
        if target is not None and target.rsplit(".", 1)[-1] in _RETRAIN_BASENAMES:
            return f"'{callee}' (re)trains a model"
        return None

    def check(self, project) -> Iterator[Finding]:
        model = _model_for(project)
        for full in sorted(model.funcs):
            facts = model.funcs[full]
            path = model.paths[full]
            for callee, line, held, local_receiver in facts.get("calls", []):
                locks = model.held_locks(held)
                if not locks:
                    continue
                reason = self._blocking_reason(model, callee, full, local_receiver)
                if reason is None:
                    continue
                yield self.finding(
                    path,
                    line,
                    f"{reason} while holding "
                    f"{', '.join(_short(lock) for lock in sorted(locks))}; "
                    "move the slow work outside the critical section and "
                    "publish its result under the lock",
                )
