"""Whole-program structures: import graph, call graph, symbol resolution.

Built once per run from the per-module summaries, these are what a
:class:`~repro.staticcheck.registry.ProjectRule` sees.  Resolution is
purely static and name-based: a dotted name maps to the project module
that is its longest prefix, and re-export facades (``from .persistence
import save_model`` in a package ``__init__``) are chased through the
import tables so ``repro.mlcore.save_model`` and
``repro.mlcore.persistence.save_model`` resolve to the same signature.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.staticcheck.project.summary import ModuleSummary, SignatureInfo

__all__ = ["CallGraph", "ImportGraph", "ProjectContext", "ResolvedSymbol"]

_MAX_ALIAS_HOPS = 8


@dataclass(frozen=True)
class ResolvedSymbol:
    """Outcome of resolving a dotted name to a project definition."""

    summary: ModuleSummary
    qualname: str
    signature: SignatureInfo | None


class ImportGraph:
    """Module -> imported project modules, with edge lines and runtime flags."""

    def __init__(self, summaries: dict[str, ModuleSummary]):
        self._summaries = summaries
        #: module -> {target module: (first line, runtime)}
        self.edges: dict[str, dict[str, tuple[int, bool]]] = {}
        for name in sorted(summaries):
            out: dict[str, tuple[int, bool]] = {}
            for target, line, runtime in summaries[name].import_edges:
                module = self._owning_module(target)
                if module is None or module == name:
                    continue
                prior = out.get(module)
                if prior is None:
                    out[module] = (line, runtime)
                else:
                    # keep the earliest line; runtime wins over lazy
                    out[module] = (min(prior[0], line), prior[1] or runtime)
            self.edges[name] = out

    def _owning_module(self, dotted: str) -> str | None:
        name = dotted
        while name:
            if name in self._summaries:
                return name
            name, _, _ = name.rpartition(".")
        return None

    def runtime_successors(self, module: str) -> list[str]:
        return sorted(t for t, (_, runtime) in self.edges.get(module, {}).items() if runtime)

    def dependencies(self, module: str) -> list[str]:
        """All imported project modules, runtime or not (cache deps)."""
        return sorted(self.edges.get(module, {}))

    def edge_line(self, module: str, target: str) -> int:
        return self.edges.get(module, {}).get(target, (1, True))[0]

    def runtime_cycles(self) -> list[list[str]]:
        """Strongly connected components of size > 1, deterministically.

        Iterative Tarjan over sorted nodes and sorted successors, so the
        report is stable across runs and Python hash seeds.
        """
        index: dict[str, int] = {}
        low: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        counter = 0
        components: list[list[str]] = []

        for root in sorted(self.edges):
            if root in index:
                continue
            work: list[tuple[str, Iterator[str]]] = [(root, iter(self.runtime_successors(root)))]
            index[root] = low[root] = counter
            counter += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, successors = work[-1]
                advanced = False
                for succ in successors:
                    if succ not in index:
                        index[succ] = low[succ] = counter
                        counter += 1
                        stack.append(succ)
                        on_stack.add(succ)
                        work.append((succ, iter(self.runtime_successors(succ))))
                        advanced = True
                        break
                    if succ in on_stack:
                        low[node] = min(low[node], index[succ])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index[node]:
                    component: list[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    if len(component) > 1:
                        components.append(sorted(component))
        return sorted(components)

    def cycle_path(self, component: list[str]) -> list[str]:
        """A concrete ``a -> b -> ... -> a`` walk inside one component."""
        start = component[0]
        members = set(component)
        path = [start]
        seen = {start}
        node = start
        while True:
            next_nodes = [s for s in self.runtime_successors(node) if s in members]
            target = next(
                (s for s in next_nodes if s == start),
                next((s for s in next_nodes if s not in seen), None),
            )
            if target is None or target == start:
                path.append(start)
                return path
            path.append(target)
            seen.add(target)
            node = target


class CallGraph:
    """Approximate caller-module -> resolved callee edges.

    Only statically resolvable dotted callees are included (no receiver
    type inference), which is exactly the set the contract-drift and
    taint rules can reason about.
    """

    def __init__(self, project: "ProjectContext"):
        #: (caller module, call dict, ResolvedSymbol) triples
        self.edges: list[tuple[str, dict, ResolvedSymbol]] = []
        for name in sorted(project.summaries):
            for call in project.summaries[name].calls:
                resolved = project.resolve(call["callee"])
                if resolved is not None:
                    self.edges.append((name, call, resolved))

    def calls_into(self, module: str) -> list[tuple[str, dict, ResolvedSymbol]]:
        return [e for e in self.edges if e[2].summary.module == module]


@dataclass
class ProjectContext:
    """Everything a project rule may inspect: all modules at once."""

    summaries: dict[str, ModuleSummary]
    #: usage facts harvested from reference-only files (tests, benchmarks):
    #: {"uses": [dotted names], "stars": [modules]} per file.
    reference_usage: list[dict] = field(default_factory=list)
    import_graph: ImportGraph = field(init=False)
    call_graph: CallGraph = field(init=False)

    def __post_init__(self) -> None:
        self.import_graph = ImportGraph(self.summaries)
        self.call_graph = CallGraph(self)

    # -- resolution --------------------------------------------------------

    def owning_module(self, dotted: str) -> str | None:
        name = dotted
        while name:
            if name in self.summaries:
                return name
            name, _, _ = name.rpartition(".")
        return None

    def resolve(self, dotted: str) -> ResolvedSymbol | None:
        """Resolve a dotted name to the summary that defines it.

        Chases re-export aliases through package ``__init__`` import
        tables (bounded hops, cycle-safe), so facade names resolve to the
        real definition site.
        """
        seen: set[str] = set()
        for _ in range(_MAX_ALIAS_HOPS):
            if dotted in seen:
                return None
            seen.add(dotted)
            module = self.owning_module(dotted)
            if module is None:
                return None
            summary = self.summaries[module]
            qualname = dotted[len(module) + 1 :] if len(dotted) > len(module) else ""
            if not qualname:
                return ResolvedSymbol(summary=summary, qualname="", signature=None)
            if qualname in summary.functions:
                return ResolvedSymbol(
                    summary=summary, qualname=qualname, signature=summary.functions[qualname]
                )
            head, _, tail = qualname.partition(".")
            if head in summary.defined_names:
                # Defined but not a callable we track (a constant, etc.).
                return ResolvedSymbol(summary=summary, qualname=qualname, signature=None)
            origin = summary.imports.get(head)
            if origin is None:
                return None
            dotted = f"{origin}.{tail}" if tail else origin
        return None
