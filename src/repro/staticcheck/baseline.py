"""Baseline ratchet: tracked pre-existing findings that may only shrink.

Adopting a new rule on a living code base usually surfaces findings that
are real but not this PR's problem.  The baseline workflow keeps CI green
without losing them:

* ``--baseline write`` records every current finding (keyed by path, rule
  and message — line numbers shift too easily to key on) into
  ``.staticcheck-baseline.json``;
* ``--baseline check`` re-runs the analysis, silences findings matched by
  the baseline (reported separately as *baselined*), and fails on
  anything new.  Baseline entries that no longer match are reported as
  *resolved*: the ratchet — rewrite the baseline to lock them out, so the
  tracked debt only ever decreases.

Suppressions and the baseline are complementary: a suppression is a
permanent, per-line, justified exemption; the baseline is temporary bulk
debt with a paydown direction.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import replace
from pathlib import Path

from repro.staticcheck.engine import CheckResult
from repro.staticcheck.findings import Finding

__all__ = ["apply_baseline", "load_baseline", "write_baseline"]

BASELINE_SCHEMA = 1


def _key(finding: Finding) -> tuple[str, str, str]:
    return (finding.path, finding.rule_id, finding.message)


def write_baseline(result: CheckResult, path: str | Path) -> int:
    """Record every active finding; returns the number of entries."""
    entries = [
        {"path": f.path, "rule": f.rule_id, "message": f.message}
        for f in sorted(result.findings)
    ]
    doc = {"schema": BASELINE_SCHEMA, "entries": entries}
    Path(path).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return len(entries)


def load_baseline(path: str | Path) -> Counter:
    """Multiset of baselined finding keys; raises OSError when unreadable."""
    doc = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(doc, dict) or doc.get("schema") != BASELINE_SCHEMA:
        raise ValueError(f"{path}: not a staticcheck baseline file")
    counter: Counter = Counter()
    for entry in doc.get("entries", []):
        counter[(entry["path"], entry["rule"], entry["message"])] += 1
    return counter


def apply_baseline(result: CheckResult, baseline: Counter) -> tuple[CheckResult, int]:
    """Split findings into new vs. baselined; count resolved entries.

    Returns the rewritten result (``findings`` holds only new findings,
    ``baselined`` the matched ones) and how many baseline entries no
    longer occur — the ratchet credit.
    """
    remaining = Counter(baseline)
    new: list[Finding] = []
    matched: list[Finding] = []
    for finding in result.findings:
        key = _key(finding)
        if remaining[key] > 0:
            remaining[key] -= 1
            matched.append(finding)
        else:
            new.append(finding)
    resolved = sum(remaining.values())
    rewritten = replace(result, findings=new, baselined=sorted(matched))
    return rewritten, resolved
