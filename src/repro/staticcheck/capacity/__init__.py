"""Memory-capacity tier: streaming discipline over jobs-scale data.

The paper's F-DATA trace is 2.2 M jobs; ROADMAP item 2 scales
``repro.storage`` and ``repro.fugaku.workload`` to hold a month of it.
Every earlier tier checks *what* the code computes — this package checks
*how much of it is alive at once*.  Three layers:

* :mod:`repro.staticcheck.capacity.scales` — the cardinality lattice
  (``bounded`` < ``batch`` < ``jobs``) and the ``# scale:`` /
  ``# streaming:`` annotation parsers.  ``# scale: jobs`` on an
  assignment seeds a value as jobs-cardinality (a storage table column,
  a :class:`~repro.fugaku.trace.JobTrace` array, a generator output);
  ``# scale: rows=jobs -> jobs`` in a ``def`` header window seeds
  parameters and declares the per-use scale of the return (each yield,
  for generators).  ``# streaming: <reason>`` declares a function part
  of a streaming path: it must never materialize jobs-scale data.
* :mod:`repro.staticcheck.capacity.dataflow` — a forward fixpoint per
  function CFG (the PR 5 worklist engine) propagating scales through
  assignments, numpy ops and same-file annotated calls, feeding the four
  file-local rules: ``full-materialization``, ``unbounded-accumulation``,
  ``scale-amplification`` and ``rowwise-loop``.  Unknown never fires.
* :mod:`repro.staticcheck.capacity.facts` + ``contract.py`` — per-module
  streaming/return-scale/materializer facts on
  :class:`~repro.staticcheck.project.summary.ModuleSummary` (cache-served),
  consumed by the cross-module ``streaming-contract`` project rule via
  the PR 4 call facts.

Work counters: :data:`COUNTERS` accumulates analysis effort for the
CLI's ``--statistics`` (snapshot-and-diff around each file analysis,
mirroring :data:`repro.staticcheck.flow.COUNTERS`,
:data:`repro.staticcheck.perf.COUNTERS` and
:data:`repro.staticcheck.procs.COUNTERS`).
"""

from __future__ import annotations

__all__ = ["COUNTERS", "snapshot_counters"]

#: Process-wide effort counters, surfaced by ``--statistics``:
#: ``scale_fixpoints`` counts per-CFG cardinality fixpoints,
#: ``streaming_functions`` counts ``# streaming:``-annotated defs seen
#: during fact extraction.
COUNTERS = {"scale_fixpoints": 0, "streaming_functions": 0}


def snapshot_counters() -> dict:
    """Copy of the current counter values (diff against a later snapshot)."""
    return dict(COUNTERS)
