"""The cross-module ``streaming-contract`` project rule.

The per-file capacity rules can hold one function to the streaming
discipline; what they cannot see is a ``# streaming:`` path draining
into a materializing callee in *another* module (the Data Fetcher's
chunked scan calling a storage method that builds the full row list).
This rule closes that hole from the project tier, the same way
``hot-path-gap`` does for the perf tier: it reads the cache-served
capacity facts off every :class:`ModuleSummary` and walks the PR 4
call facts from each streaming function.

Two violation shapes:

* the streaming function itself ``return``s a materialized collection
  (streaming paths yield chunks; they never hand back a whole
  collection), or
* it calls — possibly across modules — a callee whose own file declares
  a jobs-scale return (``# scale: -> jobs``) *and* whose body returns a
  materialized collection, and which is not itself part of the
  streaming tier.  ``ResultSet.rows()`` is the canonical example: a
  storage-boundary API that is fine at the boundary and a full-trace
  allocation inside a streaming scan.
"""

from __future__ import annotations

from typing import Iterator

from repro.staticcheck.findings import Finding
from repro.staticcheck.perf.hotpath import _AMBIENT_METHODS
from repro.staticcheck.registry import ProjectRule, register_project

__all__ = ["StreamingContractRule"]


@register_project
class StreamingContractRule(ProjectRule):
    id = "streaming-contract"
    description = (
        "a # streaming: function returns a materialized collection or "
        "calls a callee (cross-module) that materializes a jobs-scale "
        "result"
    )

    def check(self, project) -> Iterator[Finding]:
        # Deferred: importing project.concurrency at module scope would
        # cycle through repro.staticcheck.project.__init__.
        from repro.staticcheck.project.concurrency import _model_for

        model = _model_for(project)

        streaming: dict = {}
        materializes: dict = {}
        returns: dict = {}
        for module in sorted(project.summaries):
            capacity = getattr(project.summaries[module], "capacity", {}) or {}
            for qual, reason in capacity.get("streaming", {}).items():
                streaming[f"{module}.{qual}"] = (module, qual, reason)
            for qual, line in capacity.get("materializes", {}).items():
                materializes[f"{module}.{qual}"] = line
            for qual, scale in capacity.get("returns", {}).items():
                returns[f"{module}.{qual}"] = scale

        for full in sorted(streaming):
            module, qual, reason = streaming[full]
            summary = project.summaries[module]
            if full in materializes:
                yield self.finding(
                    summary.path,
                    materializes[full],
                    f"'{qual}' is declared # streaming: ({reason}) but "
                    "returns a materialized collection; a streaming path "
                    "yields bounded chunks",
                )
                continue
            # Deterministic min-line witness per offending callee.
            gaps: dict = {}
            for callee, line, _held, local_receiver in model.funcs.get(full, {}).get(
                "calls", []
            ):
                if local_receiver and callee.rsplit(".", 1)[-1] in _AMBIENT_METHODS:
                    continue
                target = model.resolve_callee(callee, full, local_receiver)
                if target is None or target == full or target in streaming:
                    continue
                if target in materializes and returns.get(target) == "jobs":
                    if target not in gaps or line < gaps[target]:
                        gaps[target] = line
            for target in sorted(gaps):
                target_module, _cls = model.homes.get(target, ("", ""))
                target_qual = (
                    target[len(target_module) + 1 :] if target_module else target
                )
                yield self.finding(
                    summary.path,
                    gaps[target],
                    f"'{qual}' is declared # streaming: but calls "
                    f"'{target_qual}' ({model.paths.get(target, '?')}), which "
                    "materializes a jobs-scale result; route this path "
                    "through a chunked scan instead",
                )
