"""Per-module capacity facts for the cross-module streaming contract.

Extracted once per cold file during summary building and serialized on
:class:`~repro.staticcheck.project.summary.ModuleSummary.capacity`, so
the incremental cache serves them without re-parsing.  Three tables,
keyed by function qualname:

* ``streaming`` — ``# streaming:`` reason text per annotated def.
* ``returns`` — the declared ``# scale: ... -> X`` per-use return scale.
* ``materializes`` — line of the first ``return`` whose value is a
  materialized collection (``list()``/``sorted()``/``np.stack``-style
  call, a ``.rows()``/``.tolist()`` result, or a list comprehension).
  A purely syntactic fact: it only bites when the project rule combines
  it with a ``streaming`` or jobs-``returns`` fact.

Modules with neither ``# scale:`` nor ``# streaming:`` annotations
contribute nothing — the facts walk is skipped and their summaries stay
exactly as small as before this tier existed.
"""

from __future__ import annotations

import ast

from repro.staticcheck.capacity import COUNTERS
from repro.staticcheck.capacity.dataflow import def_window_annotation, iter_defs
from repro.staticcheck.capacity.scales import parse_def_scale_spec
from repro.staticcheck.perf.arrays import tagged_comments

__all__ = ["collect_capacity_facts"]

#: Call basenames whose return value is a materialized collection.
_MATERIALIZING_NAMES = frozenset({"list", "tuple", "sorted"})
_MATERIALIZING_ATTRS = frozenset(
    {"rows", "tolist", "stack", "vstack", "hstack", "concatenate", "array"}
)


class _ReturnScan(ast.NodeVisitor):
    """First materializing ``return`` in one def, nested defs excluded."""

    def __init__(self) -> None:
        self.line: int | None = None

    def visit_FunctionDef(self, node) -> None:
        pass

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Return(self, node: ast.Return) -> None:
        if self.line is not None or node.value is None:
            return
        value = node.value
        if isinstance(value, ast.ListComp):
            self.line = node.lineno
            return
        if isinstance(value, ast.Call):
            func = value.func
            if isinstance(func, ast.Name) and func.id in _MATERIALIZING_NAMES:
                self.line = node.lineno
            elif isinstance(func, ast.Attribute) and func.attr in _MATERIALIZING_ATTRS:
                self.line = node.lineno


def collect_capacity_facts(summary, tree: ast.Module, source: str) -> None:
    """Populate ``summary.capacity`` from one parsed module."""
    scale_lines = tagged_comments(source, "scale")
    streaming_lines = tagged_comments(source, "streaming")
    if not scale_lines and not streaming_lines:
        return
    facts: dict = {"streaming": {}, "returns": {}, "materializes": {}}
    for qual, node in iter_defs(tree):
        reason = def_window_annotation(node, streaming_lines)
        if reason is not None:
            facts["streaming"][qual] = reason
            COUNTERS["streaming_functions"] += 1
        raw = def_window_annotation(node, scale_lines)
        if raw is not None:
            _params, ret = parse_def_scale_spec(raw)
            if ret is not None:
                facts["returns"][qual] = ret
        scan = _ReturnScan()
        for stmt in node.body:
            scan.visit(stmt)
        if scan.line is not None:
            facts["materializes"][qual] = scan.line
    facts = {key: table for key, table in facts.items() if table}
    if facts:
        summary.capacity = facts
