"""Cardinality abstract interpretation over the per-function CFGs.

Four rules share one forward fixpoint per function (the PR 5 worklist
engine), mapping local names to lattice points from
:mod:`repro.staticcheck.capacity.scales` (absent = unknown, and unknown
never fires — the tier is silent on code it cannot follow):

* ``full-materialization`` — inside a ``# streaming:``-annotated
  function, a ``list()``/``sorted()``/``np.stack``-style call or a
  comprehension materializes a jobs-scale value: the exact failure mode
  a streaming path exists to avoid, and at F-DATA scale (2.2 M jobs) an
  allocation proportional to the whole trace.
* ``unbounded-accumulation`` — a ``for`` loop appends/extends
  batch- or jobs-scale chunks onto an accumulator with no ``break``:
  memory grows with the trace length, not the chunk size.
* ``scale-amplification`` — per-row dict conversion (the classic
  rows-as-dicts ORM shape), ``.tolist()``, or chained copies over a
  jobs-scale array: each one multiplies the footprint of data that is
  already the biggest thing in the process.
* ``rowwise-loop`` — Python-level per-row iteration over a jobs-scale
  column (``for x in col`` / ``range(len(col))``); a stepped
  ``range(0, n, chunk)`` is the chunking idiom and exempt.

Scales enter from ``# scale:`` line/def annotations and propagate
through assignments, numpy ops, slices/column subscripts and same-file
annotated calls (for a generator, the declared ``->`` scale is what a
``for`` loop binds per yield).  All facts are file-local, so the rules
are sound under the incremental cache; cross-module enforcement is the
``streaming-contract`` project rule in
:mod:`repro.staticcheck.capacity.contract`.
"""

from __future__ import annotations

import ast

from repro.staticcheck.capacity import COUNTERS
from repro.staticcheck.capacity.scales import (
    max_scale,
    parse_def_scale_spec,
    parse_scale_spec,
)
from repro.staticcheck.findings import Finding
from repro.staticcheck.flow import cfgs_for
from repro.staticcheck.flow.cfg import ExceptBind, ForBind, Test, WithEnter, WithExit
from repro.staticcheck.flow.fixpoint import ForwardAnalysis, run_forward
from repro.staticcheck.perf.arrays import tagged_comments
from repro.staticcheck.registry import Rule, register

__all__ = [
    "FullMaterializationRule",
    "UnboundedAccumulationRule",
    "ScaleAmplificationRule",
    "RowwiseLoopRule",
    "iter_defs",
    "def_window_annotation",
    "module_capacity_findings",
]

#: Builtins that materialize their (iterable) argument into a new
#: collection of the same cardinality.
_BARE_MATERIALIZERS = frozenset({"list", "tuple", "sorted"})

#: numpy calls that allocate a new array holding every element passed in.
_NUMPY_MATERIALIZERS = frozenset(
    {"numpy.stack", "numpy.vstack", "numpy.hstack", "numpy.concatenate", "numpy.array"}
)

#: Calls that preserve the cardinality of their array argument(s).
_PRESERVING_CALLS = frozenset(
    {
        "numpy.asarray", "numpy.ascontiguousarray", "numpy.sort", "numpy.argsort",
        "numpy.copy", "numpy.cumsum", "numpy.flatnonzero", "numpy.abs",
        "numpy.sqrt", "numpy.exp", "numpy.log", "numpy.clip",
        "numpy.minimum", "numpy.maximum", "numpy.where",
    }
)

#: Calls whose result is O(1) whatever goes in.
_REDUCING_CALLS = frozenset(
    {
        "numpy.sum", "numpy.mean", "numpy.median", "numpy.min", "numpy.max",
        "numpy.std", "numpy.var", "numpy.count_nonzero", "numpy.searchsorted",
        "numpy.all", "numpy.any", "numpy.ptp",
    }
)

_BARE_REDUCERS = frozenset({"len", "sum", "min", "max", "float", "int", "bool", "str", "any", "all", "next"})

#: Methods transparent to cardinality.
_PRESERVE_METHODS = frozenset({"copy", "astype", "ravel", "flatten", "reshape", "view", "tolist"})

#: Methods whose result is O(1).
_REDUCE_METHODS = frozenset({"sum", "mean", "min", "max", "std", "var", "item", "any", "all", "argmin", "argmax"})

#: Copy-producing calls for the chained-copies amplification check.
_COPY_METHODS = frozenset({"copy", "astype"})
_COPY_FUNCS = frozenset({"numpy.array", "numpy.sort", "numpy.copy"})


def iter_defs(tree: ast.Module):
    """Yield ``(qualname, def node)`` for every function, depth-first."""
    stack = [("", node) for node in reversed(tree.body)]
    while stack:
        prefix, node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qual = f"{prefix}{node.name}"
            yield qual, node
            for child in reversed(node.body):
                stack.append((f"{qual}.", child))
        elif isinstance(node, ast.ClassDef):
            for child in reversed(node.body):
                stack.append((f"{prefix}{node.name}.", child))


def def_window_annotation(node, lines: dict):
    """Annotation text in the def header window, or ``None``.

    Same window as ``# hotpath:``/``# unit:``: first decorator line
    through the line before the first body statement (or the ``def``
    line itself).
    """
    start = min([node.lineno] + [d.lineno for d in node.decorator_list])
    for line in range(start, node.body[0].lineno + 1):
        if line in lines and (line < node.body[0].lineno or line == node.lineno):
            return lines[line]
    return None


def _line_annotation(stmt, lines: dict):
    end = getattr(stmt, "end_lineno", None) or stmt.lineno
    for line in range(stmt.lineno, end + 1):
        if line in lines:
            return lines[line]
    return None


class _Env:
    """File-local scale seeds for one module."""

    def __init__(self, module) -> None:
        self.module = module
        self.scale_lines = tagged_comments(module.source, "scale")
        self.streaming_lines = tagged_comments(module.source, "streaming")
        # Return scales of same-file annotated defs, keyed by basename;
        # ambiguous basenames are dropped (may-analysis must not guess).
        self.toplevel_defs: set = set()
        returns: dict = {}
        ambiguous: set = set()
        for qual, node in iter_defs(module.tree):
            if "." not in qual:
                self.toplevel_defs.add(qual)
            raw = def_window_annotation(node, self.scale_lines)
            if raw is None:
                continue
            _params, ret = parse_def_scale_spec(raw)
            if ret is None:
                continue
            base = qual.rsplit(".", 1)[-1]
            if base in returns and returns[base] != ret:
                ambiguous.add(base)
            returns[base] = ret
        self.local_returns = {b: s for b, s in returns.items() if b not in ambiguous}


class _ScaleAnalysis(ForwardAnalysis):
    """Forward analysis: local name -> scale (absent = unknown)."""

    def __init__(self, env: _Env, params: dict) -> None:
        self.env = env
        self.params = params

    def initial(self):
        return dict(self.params)

    def join(self, a, b):
        # May-join: union of bindings, per-name lattice max.  A value
        # that is jobs-scale on any path must be treated as jobs-scale.
        out = dict(a)
        for name, scale in b.items():
            out[name] = max_scale(out.get(name), scale)
        return out

    # -- expression evaluation --------------------------------------------

    def eval(self, expr, state):
        if isinstance(expr, ast.Name):
            return state.get(expr.id)
        if isinstance(expr, ast.Starred):
            return self.eval(expr.value, state)
        if isinstance(expr, ast.Subscript):
            base = self.eval(expr.value, state)
            if base is None:
                return None
            if isinstance(expr.slice, ast.Slice):
                return base  # a window view may still span the table
            if isinstance(expr.slice, ast.Constant) and isinstance(expr.slice.value, str):
                return base  # column access on a jobs-scale store
            return None  # single-element / fancy indexing: unknown
        if isinstance(expr, ast.BinOp):
            return max_scale(self.eval(expr.left, state), self.eval(expr.right, state))
        if isinstance(expr, ast.UnaryOp):
            return self.eval(expr.operand, state)
        if isinstance(expr, ast.Compare):
            return max_scale(
                self.eval(expr.left, state),
                *[self.eval(c, state) for c in expr.comparators],
            )
        if isinstance(expr, ast.BoolOp):
            return max_scale(*[self.eval(v, state) for v in expr.values])
        if isinstance(expr, ast.IfExp):
            return max_scale(self.eval(expr.body, state), self.eval(expr.orelse, state))
        if isinstance(expr, (ast.List, ast.Tuple, ast.Set)):
            starred = [
                self.eval(e, state) for e in expr.elts if isinstance(e, ast.Starred)
            ]
            return max_scale("bounded", *starred)
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            return max_scale(*[self.eval(g.iter, state) for g in expr.generators])
        if isinstance(expr, ast.Call):
            return self._call(expr, state)
        if isinstance(expr, ast.Constant):
            return "bounded"
        return None

    def _args_scale(self, node: ast.Call, state):
        """Join over arguments, with literal list/tuple args expanded
        (``np.concatenate([acc, part])`` sees acc and part)."""
        scales = []
        for arg in node.args:
            if isinstance(arg, (ast.List, ast.Tuple)):
                scales.extend(self.eval(e, state) for e in arg.elts)
            else:
                scales.append(self.eval(arg, state))
        return max_scale(*scales)

    def _call(self, node: ast.Call, state):
        func = node.func
        if isinstance(func, ast.Name):
            name = func.id
            if name in _BARE_REDUCERS:
                return "bounded"
            if name in _BARE_MATERIALIZERS or name == "iter":
                return self._args_scale(node, state)
            if name == "range":
                return None
            if name in self.env.toplevel_defs and name in self.env.local_returns:
                return self.env.local_returns[name]
            return None
        dotted = self.env.module.dotted_name(func)
        if dotted is not None:
            if dotted in _REDUCING_CALLS:
                return "bounded"
            if dotted in _PRESERVING_CALLS or dotted in _NUMPY_MATERIALIZERS:
                return self._args_scale(node, state)
            if dotted == "itertools.islice" and len(node.args) >= 2:
                return "bounded"  # capped by the stop argument
        if isinstance(func, ast.Attribute):
            attr = func.attr
            if attr in _REDUCE_METHODS:
                return "bounded"
            receiver = self.eval(func.value, state)
            if attr in _PRESERVE_METHODS:
                return receiver
            # same-file annotated method: self.m(...) or a module-unique
            # basename that is not an import alias (np.sort never matches)
            if attr in self.env.local_returns and attr not in self.env.module.imports:
                return self.env.local_returns[attr]
        return None

    # -- transfer ----------------------------------------------------------

    def transfer(self, element, state):
        if isinstance(element, (Test, WithExit, ast.Return, ast.Expr, ast.Raise)):
            return state
        if isinstance(element, ForBind):
            target = element.node.target
            if isinstance(target, ast.Name):
                out = dict(state)
                self._bind(out, target.id, self._loop_var_scale(element.node.iter, state))
                return out
            return self._clear_targets(target, state)
        if isinstance(element, WithEnter):
            if element.item.optional_vars is not None:
                return self._clear_targets(element.item.optional_vars, state)
            return state
        if isinstance(element, ExceptBind):
            name = element.handler.name
            if name and name in state:
                out = dict(state)
                out.pop(name)
                return out
            return state
        if isinstance(element, ast.Assign):
            return self._assign(element, element.targets, element.value, state)
        if isinstance(element, ast.AnnAssign):
            if element.value is None:
                return state
            return self._assign(element, [element.target], element.value, state)
        if isinstance(element, ast.AugAssign):
            return state  # in-place ops keep the target's scale
        return state

    def _loop_var_scale(self, iter_expr, state):
        scale = self.eval(iter_expr, state)
        if scale is None:
            return None
        if isinstance(iter_expr, ast.Call):
            # Direct generator/function call: the declared -> scale is
            # per use, i.e. what the loop binds each iteration.
            return scale
        return "bounded"  # one element of a known collection is one row

    def _assign(self, stmt, targets, value_expr, state):
        scale = self.eval(value_expr, state)
        raw = _line_annotation(stmt, self.env.scale_lines)
        if raw is not None:
            declared = parse_scale_spec(raw)
            if declared is not None:
                scale = declared
        out = dict(state)
        for target in targets:
            if isinstance(target, ast.Name):
                self._bind(out, target.id, scale)
            elif isinstance(target, (ast.Tuple, ast.List)):
                out = self._clear_targets(target, out)
        return out

    @staticmethod
    def _bind(state, name, scale) -> None:
        if scale is None:
            state.pop(name, None)
        else:
            state[name] = scale

    def _clear_targets(self, target, state):
        names = [n.id for n in ast.walk(target) if isinstance(n, ast.Name)]
        if not any(name in state for name in names):
            return state
        out = dict(state)
        for name in names:
            out.pop(name, None)
        return out


# ---------------------------------------------------------------------------
# per-statement rule checks


def _is_copy_call(node: ast.expr, module) -> bool:
    if not isinstance(node, ast.Call):
        return False
    if isinstance(node.func, ast.Attribute) and node.func.attr in _COPY_METHODS:
        return True
    return module.dotted_name(node.func) in _COPY_FUNCS


class _LoopBodyScan(ast.NodeVisitor):
    """Appends/breaks in one loop body, nested loops and defs excluded
    (they are judged by their own ForBind / their own CFG)."""

    def __init__(self) -> None:
        self.appends: list = []
        self.has_break = False

    def visit_For(self, node) -> None:
        pass

    visit_AsyncFor = visit_For
    visit_While = visit_For

    def visit_FunctionDef(self, node) -> None:
        pass

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Break(self, node) -> None:
        self.has_break = True

    def visit_Call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in ("append", "extend")
            and len(node.args) == 1
        ):
            self.appends.append(node)
        self.generic_visit(node)


def _check_call(analysis, node: ast.Call, state, streaming, report) -> None:
    func = node.func
    module = analysis.env.module
    dotted = module.dotted_name(func)
    is_materializer = (
        isinstance(func, ast.Name) and func.id in _BARE_MATERIALIZERS
    ) or dotted in _NUMPY_MATERIALIZERS
    if is_materializer and streaming is not None:
        if analysis._args_scale(node, state) == "jobs":
            name = func.id if isinstance(func, ast.Name) else dotted
            report(
                "full-materialization",
                node,
                f"{name}() materializes a jobs-scale value inside a "
                f"# streaming: function ({streaming}); at F-DATA scale this "
                "allocates the whole trace — yield bounded chunks instead",
            )
    if (
        isinstance(func, ast.Attribute)
        and func.attr == "tolist"
        and analysis.eval(func.value, state) == "jobs"
    ):
        report(
            "scale-amplification",
            node,
            ".tolist() converts a jobs-scale array into per-row python "
            "objects (~10x the footprint); keep it columnar or chunk first",
        )
    if _is_copy_call(node, module):
        inner = (
            func.value
            if isinstance(func, ast.Attribute)
            else (node.args[0] if node.args else None)
        )
        if (
            inner is not None
            and _is_copy_call(inner, module)
            and analysis.eval(inner, state) == "jobs"
        ):
            report(
                "scale-amplification",
                node,
                "chained copies of a jobs-scale array hold two full-trace "
                "buffers alive at once; fuse into a single copy",
            )


def _check_comprehension(analysis, node, state, streaming, report) -> None:
    iter_scale = analysis.eval(node.generators[0].iter, state)
    if iter_scale != "jobs":
        return
    row_dict = isinstance(node, ast.DictComp) or (
        isinstance(node, ast.ListComp)
        and (
            isinstance(node.elt, ast.Dict)
            or (
                isinstance(node.elt, ast.Call)
                and isinstance(node.elt.func, ast.Name)
                and node.elt.func.id == "dict"
            )
        )
    )
    if row_dict:
        report(
            "scale-amplification",
            node,
            "builds a python dict per row over a jobs-scale value: "
            "rows-as-dicts costs ~10x the columnar footprint; keep columns "
            "or use a chunked scan",
        )
        return
    if streaming is not None and isinstance(node, (ast.ListComp, ast.SetComp)):
        report(
            "full-materialization",
            node,
            f"comprehension materializes a jobs-scale value inside a "
            f"# streaming: function ({streaming}); yield bounded chunks "
            "instead",
        )


def _scan_expr(analysis, root, state, streaming, report) -> None:
    for node in ast.walk(root):
        if isinstance(node, ast.Call):
            _check_call(analysis, node, state, streaming, report)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp)):
            _check_comprehension(analysis, node, state, streaming, report)


def _check_for_loop(analysis, element: ForBind, state, report) -> None:
    loop = element.node
    iter_expr = loop.iter
    iter_scale = analysis.eval(iter_expr, state)
    rowwise = iter_scale == "jobs"
    if (
        not rowwise
        and isinstance(iter_expr, ast.Call)
        and isinstance(iter_expr.func, ast.Name)
        and iter_expr.func.id == "range"
        and len(iter_expr.args) < 3  # a stepped range is the chunking idiom
    ):
        for arg in iter_expr.args:
            if (
                isinstance(arg, ast.Call)
                and isinstance(arg.func, ast.Name)
                and arg.func.id == "len"
                and len(arg.args) == 1
                and analysis.eval(arg.args[0], state) == "jobs"
            ):
                rowwise = True
    if rowwise:
        report(
            "rowwise-loop",
            loop,
            "python-level per-row iteration over a jobs-scale value: at "
            "2.2 M jobs this is the slow path and it defeats chunked "
            "scans — vectorize or iterate batches",
        )
    # Loop-carried accumulation of chunks: judged with the loop variable
    # bound (the chunk a generator yields is what gets appended).
    body_state = analysis.transfer(element, state)
    scan = _LoopBodyScan()
    for stmt in loop.body:
        scan.visit(stmt)
    if scan.has_break:
        return  # an explicit bound: the accumulator cannot grow with the trace
    for call in scan.appends:
        if analysis.eval(call.args[0], body_state) in ("batch", "jobs"):
            report(
                "unbounded-accumulation",
                call,
                f".{call.func.attr}() accumulates batch/jobs-scale chunks "
                "with no bound: memory grows with the trace length, not "
                "the chunk size — consume the stream instead of collecting it",
            )


def _visit_element(analysis, element, state, streaming, report) -> None:
    if isinstance(element, ForBind):
        _check_for_loop(analysis, element, state, report)
        _scan_expr(analysis, element.node.iter, state, streaming, report)
        return
    if isinstance(element, Test):
        _scan_expr(analysis, element.expr, state, streaming, report)
        return
    if isinstance(element, WithEnter):
        _scan_expr(analysis, element.item.context_expr, state, streaming, report)
        return
    if isinstance(element, (WithExit, ExceptBind)):
        return
    if isinstance(element, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return  # nested scopes get their own graphs
    if isinstance(element, (ast.Return, ast.Assign, ast.AnnAssign, ast.AugAssign, ast.Expr)):
        if getattr(element, "value", None) is not None:
            _scan_expr(analysis, element.value, state, streaming, report)
        return
    if isinstance(element, ast.Assert):
        _scan_expr(analysis, element.test, state, streaming, report)
        return
    for child in ast.iter_child_nodes(element):
        if isinstance(child, ast.expr):
            _scan_expr(analysis, child, state, streaming, report)


def module_capacity_findings(module) -> list:
    """All capacity findings for one file: ``(rule_id, line, col, message)``.

    One fixpoint per function CFG, shared by the four rules and memoized
    on the :class:`ModuleContext`.
    """
    cached = getattr(module, "_capacity_findings", None)
    if cached is not None:
        return cached

    env = _Env(module)
    findings: list = []
    reported: set = set()

    def report(rule_id, node, message):
        key = (rule_id, node.lineno, node.col_offset, message)
        if key not in reported:
            reported.add(key)
            findings.append((rule_id, node.lineno, node.col_offset, message))

    if env.scale_lines:  # no seeds, no facts: the whole file is unknown
        for graph in cfgs_for(module):
            params: dict = {}
            streaming = None
            if graph.node is not None:
                raw = def_window_annotation(graph.node, env.scale_lines)
                if raw is not None:
                    params, _ret = parse_def_scale_spec(raw)
                streaming = def_window_annotation(graph.node, env.streaming_lines)
            analysis = _ScaleAnalysis(env, params)
            COUNTERS["scale_fixpoints"] += 1
            result = run_forward(graph.cfg, analysis)
            for block in graph.cfg.blocks:
                if block.id not in result.in_states:
                    continue  # unreachable
                state = result.in_states[block.id]
                for element in block.elements:
                    _visit_element(analysis, element, state, streaming, report)
                    state = analysis.transfer(element, state)

    module._capacity_findings = findings
    return findings


class _CapacityRuleBase(Rule):
    """One shared cardinality pass; each subclass yields its rule's slice."""

    def check(self, module):
        for rule_id, line, col, message in module_capacity_findings(module):
            if rule_id == self.id:
                yield Finding(
                    path=module.path, line=line, col=col, rule_id=self.id, message=message
                )


@register
class FullMaterializationRule(_CapacityRuleBase):
    id = "full-materialization"
    description = (
        "a # streaming: function materializes a jobs-scale value "
        "(list()/np.stack/comprehension over full-trace data)"
    )


@register
class UnboundedAccumulationRule(_CapacityRuleBase):
    id = "unbounded-accumulation"
    description = (
        "a loop appends batch/jobs-scale chunks onto an accumulator with "
        "no bound: peak memory grows with the trace, not the chunk size"
    )


@register
class ScaleAmplificationRule(_CapacityRuleBase):
    id = "scale-amplification"
    description = (
        "per-row dict conversion, .tolist(), or chained copies multiply "
        "the footprint of a jobs-scale array"
    )


@register
class RowwiseLoopRule(_CapacityRuleBase):
    id = "rowwise-loop"
    description = (
        "python-level per-row iteration over a jobs-scale column; "
        "vectorize or iterate chunked batches instead"
    )
