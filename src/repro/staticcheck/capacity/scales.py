"""The cardinality lattice and the ``# scale:`` / ``# streaming:`` parsers.

A *scale* names the order of magnitude of rows a value holds:

* ``bounded`` — O(1) or O(batch-constant): scalars, headers, chunk
  buffers capped by a literal, reductions of anything.
* ``batch`` — one streaming chunk (a day of trace, a ``batch_rows``
  slice): bounded by configuration, not by the trace.
* ``jobs`` — proportional to the job count itself: a full table column,
  a whole :class:`~repro.fugaku.trace.JobTrace` array, the concatenated
  output of a workload generation run.  At F-DATA scale this is the
  cardinality that must never be materialized on a streaming path.

Annotations use the same tokenizer-backed comment scanner as the perf
tier (``# dtype:``/``# shape:``), so a ``# scale:`` inside a string
literal never counts:

* ``x = fetch_all()  # scale: jobs`` — seed one assignment.
* ``def f(rows):  # scale: rows=jobs -> batch`` — seed parameters and
  declare the scale of the value a caller binds *per use*: the return
  for plain functions, each yield for generators (so a chunked scan is
  ``-> batch`` even though the stream covers jobs-many rows in total).
* ``def f(...):  # streaming: <reason>`` — declare the function part of
  a streaming path; the capacity rules then forbid materializing
  jobs-scale data anywhere inside it, and the cross-module
  ``streaming-contract`` rule holds its callees to the same discipline.
"""

from __future__ import annotations

__all__ = [
    "SCALES",
    "SCALE_ORDER",
    "max_scale",
    "parse_scale_spec",
    "parse_def_scale_spec",
]

#: Lattice points, bottom-up.  ``None`` (absent) is unknown and silent.
SCALES = ("bounded", "batch", "jobs")

SCALE_ORDER = {name: rank for rank, name in enumerate(SCALES)}


def max_scale(*scales):
    """Join of known scales; ``None`` operands are unknown and ignored.

    Returns ``None`` only when every operand is unknown — a may-analysis
    join: an elementwise op over a jobs-length array is jobs-length no
    matter what rides along.
    """
    known = [s for s in scales if s is not None]
    if not known:
        return None
    return max(known, key=SCALE_ORDER.__getitem__)


def parse_scale_spec(spec: str):
    """``jobs`` -> ``"jobs"``; unknown names -> ``None``."""
    spec = spec.strip()
    return spec if spec in SCALE_ORDER else None


def parse_def_scale_spec(spec: str):
    """Parse a def-line spec ``rows=jobs, header=bounded -> batch``.

    Returns ``(params, ret)``: a name->scale dict and the declared
    per-use scale of the return (or ``None``).  Malformed fragments are
    skipped rather than guessed at, mirroring the dtype spec parser.
    """
    ret = None
    if "->" in spec:
        spec, _, ret_part = spec.partition("->")
        ret = parse_scale_spec(ret_part)
    params: dict = {}
    for part in spec.split(","):
        name, eq, value = part.partition("=")
        if not eq:
            continue
        scale = parse_scale_spec(value)
        if scale is not None and name.strip().isidentifier():
            params[name.strip()] = scale
    return params, ret
