"""Torn-read sanitizer: the dynamic oracle for ``unguarded-shared-write``.

:class:`StateGuard` is a seqlock-style version counter attached to a
piece of shared state (the MCBound model + label cache handed between
the retraining workflow and the serving path).  Writers bump the counter
to odd on entry and back to even on exit; readers snapshot it around
their critical section.  A reader that observes an odd counter, or a
counter that moved, overlapped a write — exactly the torn read the
static rule predicts when the common lock is missing.

The guard *observes*; it does not serialize.  Pair it with a real lock
in production code (the guard then proves the lock is sufficient) or use
it alone in tests to demonstrate a race.
"""

from __future__ import annotations

import threading
import weakref
from contextlib import contextmanager

from repro.sanitizers.events import record
from repro.sanitizers.runtime import enabled

__all__ = ["StateGuard"]

#: every live guard, so a fork child can re-arm them (see forkaware).
_guards: "weakref.WeakSet[StateGuard]" = weakref.WeakSet()


def _rearm_after_fork() -> None:
    """Reset every guard's version state in a fork child.

    A fork during a parent write leaves the child's counter odd forever —
    every later read would report a torn read that never happened — and a
    fork during ``_bump`` leaves the version lock held by a thread the
    child does not have.  Fresh counter, fresh lock.
    """
    for guard in list(_guards):
        guard._version = 0
        guard._version_lock = threading.Lock()


class StateGuard:
    """Versioned checkpoint for state shared across a thread boundary."""

    def __init__(self, name: str):
        self.name = name
        self._version = 0
        self._version_lock = threading.Lock()
        _guards.add(self)

    def _bump(self) -> int:
        with self._version_lock:
            self._version += 1
            return self._version

    @contextmanager
    def writing(self):
        """Mark a write in progress; always bumps back to stable on exit."""
        if not enabled():
            yield
            return
        self._bump()
        try:
            yield
        finally:
            self._bump()

    @contextmanager
    def reading(self):
        """Check that no write overlapped the wrapped read."""
        if not enabled():
            yield
            return
        start = self._version
        try:
            yield
        finally:
            end = self._version
            if start % 2 == 1 or end != start:
                record(
                    "torn-read",
                    guard=self.name,
                    start_version=start,
                    end_version=end,
                    reason=(
                        "read overlapped an in-progress write"
                        if start % 2 == 1
                        else "state changed underneath the reader"
                    ),
                )
