"""Runtime lock-order sanitizer: the dynamic oracle for ``lock-order-cycle``.

:func:`new_lock` returns a :class:`TrackedLock` wrapping a real
``threading`` primitive.  While sanitizing is enabled every acquisition
feeds a process-wide *lock-order graph* (edge ``A -> B`` whenever ``B``
is acquired with ``A`` held); an acquisition that closes a cycle in that
graph is an ordering inversion — some interleaving of the participating
threads deadlocks — and is reported as a ``lock-order-cycle`` event.

The graph accumulates across threads, so the detector is deterministic:
it fires once both orders have *run*, whether or not the schedule that
actually deadlocks was hit.  It also flags re-acquiring a non-reentrant
lock on the holding thread (guaranteed self-deadlock) without blocking,
since the wrapper sees the hazard before touching the inner lock.
"""

from __future__ import annotations

import threading

from repro.sanitizers.events import record
from repro.sanitizers.runtime import enabled

__all__ = ["TrackedLock", "clear_lock_graph", "lock_graph", "new_lock"]

#: lock name -> names acquired while it was held (process-wide)
_edges: dict[str, set[str]] = {}
_graph_lock = threading.Lock()
_held = threading.local()


def _held_stack() -> list[str]:
    stack = getattr(_held, "stack", None)
    if stack is None:
        stack = []
        _held.stack = stack
    return stack


def lock_graph() -> dict[str, list[str]]:
    """Snapshot of the observed lock-order edges, deterministically sorted."""
    with _graph_lock:
        return {name: sorted(_edges[name]) for name in sorted(_edges)}


def clear_lock_graph() -> None:
    """Reset the order graph (tests call this between fixtures)."""
    with _graph_lock:
        _edges.clear()


def _rearm_after_fork() -> None:
    """Reset lock-order state in a fork child.

    The inherited order graph describes the *parent's* threads; keeping
    it would report phantom inversions for acquisitions the child never
    interleaved.  The graph lock and the held stack are replaced rather
    than cleared — either may have been held by a (now nonexistent)
    parent thread at fork time, which would wedge the child's first
    probe.
    """
    global _edges, _graph_lock, _held
    _graph_lock = threading.Lock()
    _edges = {}
    _held = threading.local()


def _path(start: str, goal: str) -> list[str] | None:
    """Shortest observed edge path ``start -> ... -> goal``, if any."""
    with _graph_lock:
        frontier = [[start]]
        seen = {start}
        while frontier:
            path = frontier.pop(0)
            for succ in sorted(_edges.get(path[-1], ())):
                if succ == goal:
                    return path + [succ]
                if succ not in seen:
                    seen.add(succ)
                    frontier.append(path + [succ])
    return None


class TrackedLock:
    """A named lock whose acquisitions feed the runtime order graph.

    The wrapper is always safe to use with sanitizing disabled: it
    forwards straight to the inner primitive after one flag check, which
    is the overhead the ``benchmarks`` suite keeps visible.
    """

    def __init__(self, name: str, factory=threading.RLock):
        self.name = name
        self.reentrant = factory in (threading.RLock,)
        self._inner = factory()

    def _before_acquire(self) -> None:
        stack = _held_stack()
        if self.name in stack:
            if not self.reentrant:
                record(
                    "lock-order-cycle",
                    lock=self.name,
                    chain=[self.name, self.name],
                    reason="non-reentrant lock re-acquired by its holding thread",
                )
            return
        cycle = None
        for held_name in stack:
            if held_name != self.name:
                cycle = _path(self.name, held_name)
                if cycle is not None:
                    break
        with _graph_lock:
            for held_name in stack:
                if held_name != self.name:
                    _edges.setdefault(held_name, set()).add(self.name)
        if cycle is not None:
            record(
                "lock-order-cycle",
                lock=self.name,
                chain=cycle + [cycle[0]],
                reason="locks acquired in inconsistent nested order",
            )

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        tracking = enabled()
        if tracking:
            self._before_acquire()
        acquired = self._inner.acquire(blocking, timeout)
        if acquired and tracking:
            _held_stack().append(self.name)
        return acquired

    def release(self) -> None:
        self._inner.release()
        stack = _held_stack()
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] == self.name:
                del stack[i]
                break

    def __enter__(self) -> "TrackedLock":
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()


def new_lock(name: str, factory=threading.RLock) -> TrackedLock:
    """Create a named, sanitizer-aware lock.

    This is the factory the code base uses for every lock that guards
    cross-thread state; :data:`repro.staticcheck.project.summary.LOCK_FACTORIES`
    recognizes it, so the static rules see these locks too.
    """
    return TrackedLock(name, factory=factory)
