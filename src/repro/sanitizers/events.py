"""Thread-safe sanitizer event log with optional JSONL persistence.

Every sanitizer (lock order, torn reads, numerics) reports through
:func:`record`; tests and the CI artifact job read the log back through
:func:`events`.  When ``REPRO_SANITIZE_LOG`` names a file, the
accumulated events are flushed there as JSON Lines at interpreter exit,
so a sanitized tier-1 run leaves a machine-readable trail even when no
assertion fired.
"""

from __future__ import annotations

import atexit
import json
import os
import threading
from dataclasses import dataclass, field

__all__ = ["SanitizerEvent", "clear_events", "events", "flush_log", "record"]

LOG_ENV = "REPRO_SANITIZE_LOG"

#: pid that imported this module — a differing ``os.getpid()`` means we
#: are in a fork child that inherited the parent's module state.
_main_pid = os.getpid()


@dataclass(frozen=True)
class SanitizerEvent:
    """One detected hazard: what kind, on which thread/process, with what context."""

    seq: int
    kind: str
    thread: str
    pid: int = 0
    details: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "kind": self.kind,
            "thread": self.thread,
            "pid": self.pid,
            **self.details,
        }


_events: list[SanitizerEvent] = []
_events_lock = threading.Lock()
_seq = 0


def record(kind: str, **details) -> SanitizerEvent:  # hotpath: sanitizer probes fire in the serve path
    """Append one event to the in-process log and return it."""
    global _seq
    with _events_lock:
        _seq += 1
        event = SanitizerEvent(
            seq=_seq,
            kind=kind,
            thread=threading.current_thread().name,
            pid=os.getpid(),
            details=details,
        )
        _events.append(event)
    return event


def events(kind: str | None = None) -> list[SanitizerEvent]:
    """Snapshot of the log, optionally filtered to one event kind."""
    with _events_lock:
        snapshot = list(_events)
    if kind is None:
        return snapshot
    return [event for event in snapshot if event.kind == kind]


def clear_events() -> None:
    """Reset the log (tests call this between fixtures)."""
    with _events_lock:
        _events.clear()


def _in_child_process() -> bool:
    """Are we a worker process (fork or spawn) rather than the main one?"""
    if os.getpid() != _main_pid:
        return True
    import multiprocessing

    return multiprocessing.parent_process() is not None


def flush_log() -> None:
    """Write the event log to ``REPRO_SANITIZE_LOG`` as JSON Lines.

    Runs automatically at interpreter exit.  A child process writes to
    ``<path>.<pid>`` instead — and only when it has events — so a pool of
    clean workers neither clobbers the parent's log nor sprays empty
    files.  Parent-side readers glob for ``<path>.*`` to collect the
    children's hazards.
    """
    path = os.environ.get(LOG_ENV)
    if not path:
        return
    snapshot = events()
    if _in_child_process():
        if not snapshot:
            return
        path = f"{path}.{os.getpid()}"
    with open(path, "w", encoding="utf-8") as handle:
        for event in snapshot:
            handle.write(json.dumps(event.to_dict(), sort_keys=True) + "\n")


def _rearm_after_fork() -> None:
    """Reset the log in a fork child (the inherited events are the parent's).

    The fresh lock matters as much as the fresh list: a parent thread
    holding ``_events_lock`` at fork time would leave the child's copy
    locked forever, deadlocking the first probe that fires there.
    """
    global _events, _events_lock, _seq
    _events_lock = threading.Lock()
    _events = []
    _seq = 0


atexit.register(flush_log)
