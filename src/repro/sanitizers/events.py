"""Thread-safe sanitizer event log with optional JSONL persistence.

Every sanitizer (lock order, torn reads, numerics) reports through
:func:`record`; tests and the CI artifact job read the log back through
:func:`events`.  When ``REPRO_SANITIZE_LOG`` names a file, the
accumulated events are flushed there as JSON Lines at interpreter exit,
so a sanitized tier-1 run leaves a machine-readable trail even when no
assertion fired.
"""

from __future__ import annotations

import atexit
import json
import os
import threading
from dataclasses import dataclass, field

__all__ = ["SanitizerEvent", "clear_events", "events", "record"]

LOG_ENV = "REPRO_SANITIZE_LOG"


@dataclass(frozen=True)
class SanitizerEvent:
    """One detected hazard: what kind, on which thread, with what context."""

    seq: int
    kind: str
    thread: str
    details: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"seq": self.seq, "kind": self.kind, "thread": self.thread, **self.details}


_events: list[SanitizerEvent] = []
_events_lock = threading.Lock()
_seq = 0


def record(kind: str, **details) -> SanitizerEvent:  # hotpath: sanitizer probes fire in the serve path
    """Append one event to the in-process log and return it."""
    global _seq
    with _events_lock:
        _seq += 1
        event = SanitizerEvent(
            seq=_seq, kind=kind, thread=threading.current_thread().name, details=details
        )
        _events.append(event)
    return event


def events(kind: str | None = None) -> list[SanitizerEvent]:
    """Snapshot of the log, optionally filtered to one event kind."""
    with _events_lock:
        snapshot = list(_events)
    if kind is None:
        return snapshot
    return [event for event in snapshot if event.kind == kind]


def clear_events() -> None:
    """Reset the log (tests call this between fixtures)."""
    with _events_lock:
        _events.clear()


def _flush_log() -> None:
    path = os.environ.get(LOG_ENV)
    if not path:
        return
    snapshot = events()
    with open(path, "w", encoding="utf-8") as handle:
        for event in snapshot:
            handle.write(json.dumps(event.to_dict(), sort_keys=True) + "\n")


atexit.register(_flush_log)
