"""Sanitizer on/off switch: ``REPRO_SANITIZE=1`` or :func:`sanitize`.

Split into its own module so :mod:`repro.sanitizers.events` and the
individual sanitizers can share the switch without import cycles.  The
switch is evaluated at *use* time, not lock-creation time, so a process
can be instrumented (or not) purely through the environment — the code
under test never changes.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager

__all__ = ["enabled", "sanitize"]

ENABLE_ENV = "REPRO_SANITIZE"

_forced = threading.local()


def enabled() -> bool:  # hotpath: gate checked by every sanitizer probe
    """Is sanitizing active on this thread right now?"""
    if getattr(_forced, "depth", 0) > 0:
        return True
    return os.environ.get(ENABLE_ENV, "") == "1"


@contextmanager
def sanitize():
    """Force-enable sanitizing for the current thread within a block.

    Thread-local by design: a test can instrument the thread bodies it
    spawns (each body enters its own :func:`sanitize` block) without
    turning sanitizing on for the whole process.
    """
    _forced.depth = getattr(_forced, "depth", 0) + 1
    try:
        yield
    finally:
        _forced.depth -= 1
