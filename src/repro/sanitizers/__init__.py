"""Opt-in runtime sanitizers: dynamic oracles for the static concurrency rules.

Every finding class in :mod:`repro.staticcheck.project.concurrency` has a
runtime counterpart here, so a static report can be confirmed (or a fix
validated) by running the real code instrumented:

=======================  ==========================================
static rule              runtime oracle
=======================  ==========================================
``lock-order-cycle``     :func:`new_lock` / :class:`TrackedLock`
                         feed a process-wide lock-order graph
``unguarded-shared-write``  :class:`StateGuard` seqlock checkpoints
                         detect torn reads across the boundary
(numeric hygiene)        :func:`numeric_trap` / :func:`check_finite`
                         trap NaN/Inf/overflow in model hot paths
=======================  ==========================================

Everything is off by default and costs one flag check per probe; set
``REPRO_SANITIZE=1`` (or enter :func:`sanitize`) to arm it, and point
``REPRO_SANITIZE_LOG`` at a file to persist the event log as JSONL at
exit.  Detections are *recorded*, never raised — a sanitized tier-1 run
must pass, with hazards read back via :func:`events`.
"""

from repro.sanitizers.events import SanitizerEvent, clear_events, events, flush_log, record
from repro.sanitizers.forkaware import install as _install_fork_hook
from repro.sanitizers.lockorder import TrackedLock, clear_lock_graph, lock_graph, new_lock
from repro.sanitizers.numerics import check_finite, numeric_trap
from repro.sanitizers.runtime import enabled, sanitize
from repro.sanitizers.torncheck import StateGuard

__all__ = [
    "SanitizerEvent",
    "StateGuard",
    "TrackedLock",
    "check_finite",
    "clear_events",
    "clear_lock_graph",
    "enabled",
    "events",
    "flush_log",
    "lock_graph",
    "new_lock",
    "numeric_trap",
    "record",
    "sanitize",
]

# Fork children must not inherit the parent's sanitizer state (events,
# order graph, guard versions, internal locks); see forkaware.
_install_fork_hook()
