"""Numeric sanitizer: NaN/Inf/overflow traps for the modelling hot paths.

Two complementary probes around :mod:`repro.roofline` and
:mod:`repro.mlcore` arithmetic:

* :func:`numeric_trap` — a context manager that routes numpy's
  floating-point error machinery (divide, overflow, invalid) to the
  sanitizer event log for the duration of a block, instead of the
  default warn-once-and-continue;
* :func:`check_finite` — an explicit assertion that a computed array is
  wholly finite, recording a ``non-finite`` event (with counts) when a
  NaN or Inf slipped through.

Underflow is deliberately left at numpy's default: gradual underflow to
zero is expected in distance and efficiency computations and flagging it
would bury the real signals.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np

from repro.sanitizers.events import record
from repro.sanitizers.runtime import enabled

__all__ = ["check_finite", "numeric_trap"]


def check_finite(site: str, array) -> None:  # hotpath: sanitizer probe in the serve path
    """Record a ``non-finite`` event if ``array`` contains NaN or Inf."""
    if not enabled():
        return
    values = np.asarray(array, dtype=float)
    finite = np.isfinite(values)
    if finite.all():
        return
    record(
        "non-finite",
        site=site,
        nan_count=int(np.isnan(values).sum()),
        inf_count=int(np.isinf(values).sum()),
        size=int(values.size),
    )


@contextmanager
def numeric_trap(site: str):  # hotpath: wraps the serve-path model math
    """Trap numpy FP errors (divide/overflow/invalid) inside the block."""
    if not enabled():
        yield
        return

    def _on_fp_error(err: str, _flag: int) -> None:
        record("fp-error", site=site, error=err)

    with np.errstate(divide="call", over="call", invalid="call", call=_on_fp_error):
        yield
