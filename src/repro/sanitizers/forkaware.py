"""Fork-awareness for the sanitizers: re-arm inherited state in children.

``fork`` copies the whole sanitizer apparatus into the child: the event
log (the *parent's* events), the lock-order graph (the parent's thread
interleavings), every ``StateGuard`` counter (odd if the parent was
mid-write) — and, worst, any internal lock a parent thread happened to
hold at fork time, which the child can never release.  Each of those is
either a phantom-report source or a deadlock.

:func:`install` registers an ``os.register_at_fork`` ``after_in_child``
hook that resets all of it (see the per-module ``_rearm_after_fork``
functions) and schedules the child's own event-log flush through
``multiprocessing.util.Finalize`` — multiprocessing children exit via
``os._exit`` and never run ``atexit`` handlers, so without this the
child's hazards would vanish with it.  The hook is installed when
:mod:`repro.sanitizers` is imported and costs nothing until a fork
actually happens; spawn/forkserver children re-import from scratch and
need no re-arming.
"""

from __future__ import annotations

import os

__all__ = ["install"]

_installed = False


def _rearm_in_child() -> None:
    # Imported per-module (not via the package, whose ``events`` name is
    # the accessor function, not the submodule).
    from repro.sanitizers.events import _rearm_after_fork as rearm_events
    from repro.sanitizers.lockorder import _rearm_after_fork as rearm_lockorder
    from repro.sanitizers.torncheck import _rearm_after_fork as rearm_torncheck

    rearm_events()
    rearm_lockorder()
    rearm_torncheck()


class _FlushAnchor:
    """Keeps the after-fork flush registration alive (weakly keyed)."""


_anchor = _FlushAnchor()


def _schedule_child_flush(_anchor_obj) -> None:
    # Runs inside a multiprocessing child *after* ``_bootstrap`` has
    # cleared the inherited finalizer registry (registering a Finalize
    # from the ``os.register_at_fork`` hook would be wiped by that
    # clear).  Multiprocessing children exit via ``os._exit`` without
    # running ``atexit``, so this Finalize is the only path that gets
    # the child's events onto disk.
    from multiprocessing.util import Finalize

    from repro.sanitizers.events import flush_log

    Finalize(None, flush_log, exitpriority=0)


def install() -> None:
    """Register the after-fork re-arm hooks (idempotent, no-op off-POSIX)."""
    global _installed
    if _installed or not hasattr(os, "register_at_fork"):
        return
    _installed = True
    os.register_at_fork(after_in_child=_rearm_in_child)
    from multiprocessing.util import register_after_fork

    register_after_fork(_anchor, _schedule_child_flush)
