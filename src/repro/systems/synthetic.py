"""Synthetic non-Fugaku systems: distinct knees, distinct workload mixes.

Two machines modeled on the workload-dataset papers in PAPERS.md:

- :class:`SupercloudSystem` — an MIT-Supercloud-like ML/AI datacenter
  node: fat x86 nodes, high compute peak against commodity DDR + a slow
  secondary fabric ceiling, so the ridge sits at 4.375 Flops/Byte (vs
  Fugaku's 3.30) and a workload dominated by training / inference /
  notebook jobs.
- :class:`IN2P3System` — an IN2P3-CC-like high-throughput computing
  farm: modest per-node peaks, a three-step frequency ladder, and an
  HEP event-processing mix (reconstruction, Monte-Carlo, skims) that is
  overwhelmingly memory-bound with a ridge of 2.62 Flops/Byte.

Both machines keep the project-wide four-counter trace schema
(``perf2..perf5``): the generic Eq. 4/5 formulas are parameterized by
each machine's vector multiplier, cache-line size and counter
replication, so the same characterizer pipeline runs unchanged.  The
knee ladders (``frequency_peaks``) are distinct and validated monotone —
the ``sysmodel-dimension`` rule checks the declared literals and
:class:`repro.systems.spec.MachineSpec` re-checks them at runtime.
"""

from __future__ import annotations

from repro.fugaku.apps import AppArchetype
from repro.fugaku.counters import (
    counters_from_flops_bytes,
    flops_from_counters,
    moved_bytes_from_counters,
)
from repro.roofline.multiceiling import Ceiling
from repro.systems.base import SystemModel
from repro.systems.registry import register_system
from repro.systems.spec import MachineSpec

__all__ = ["SupercloudSystem", "IN2P3System", "SUPERCLOUD", "IN2P3"]


#: MIT-Supercloud-like ML node: AVX-512 x86, high peak, DDR-bound knee.
SUPERCLOUD = MachineSpec(
    name="supercloud",
    peak_gflops_node=7000.0,
    peak_membw_gbs=1600.0,
    cores_per_node=40,
    frequencies_ghz=(2.5, 3.1),
    frequency_peaks=((2.5, 5645.0), (3.1, 7000.0)),
    sve_bits=256,
    cache_line_bytes=64,
    cores_per_cmg=1,
    num_nodes=480,
    memory_gib_per_node=384,
)

#: IN2P3-CC-like HTC farm node: modest peaks, three-step clock ladder.
IN2P3 = MachineSpec(
    name="in2p3",
    peak_gflops_node=2150.0,
    peak_membw_gbs=820.0,
    cores_per_node=64,
    frequencies_ghz=(2.2, 2.6, 3.0),
    frequency_peaks=((2.2, 1576.0), (2.6, 1863.0), (3.0, 2150.0)),
    sve_bits=512,
    cache_line_bytes=64,
    cores_per_cmg=1,
    num_nodes=1200,
    memory_gib_per_node=256,
)


def build_supercloud_catalog() -> tuple[AppArchetype, ...]:
    """ML/AI datacenter mix (Supercloud ridge: log10(4.375) ≈ 0.641).

    Training and dense-inference archetypes sit above the ridge,
    notebooks / ETL / data loaders far below; the straddlers
    ("gnn-training", "video-analytics") supply the label noise.
    """
    return (
        AppArchetype(
            name="dl-training", domain="machine learning", weight=0.26,
            op_mu=1.05, op_sigma=0.30, job_sigma=0.12, drift_sigma=0.0050,
            eff_alpha=2.6, eff_beta=3.6,
            node_choices=(1, 2, 4, 8, 16), node_probs=(0.35, 0.25, 0.20, 0.12, 0.08),
            duration_mu=9.0, duration_sigma=1.1, power_base_w=420.0,
            environments=("conda/pytorch", "singularity/tf2", "conda/jax"),
            name_tokens=("train", "resnet", "bert", "epoch", "ddp", "finetune"),
        ),
        AppArchetype(
            name="dl-inference", domain="machine learning", weight=0.14,
            op_mu=0.15, op_sigma=0.30, job_sigma=0.13, drift_sigma=0.0045,
            eff_alpha=1.8, eff_beta=6.0,
            node_choices=(1, 2), node_probs=(0.80, 0.20),
            duration_mu=7.2, duration_sigma=1.0, power_base_w=240.0,
            environments=("conda/pytorch", "singularity/triton", "conda/onnx"),
            name_tokens=("infer", "batch", "serve", "score", "embed", "eval"),
        ),
        AppArchetype(
            name="notebook-etl", domain="interactive", weight=0.20,
            op_mu=-1.60, op_sigma=0.45, job_sigma=0.16, drift_sigma=0.0055,
            eff_alpha=1.0, eff_beta=13.0,
            node_choices=(1,), node_probs=(1.0,),
            duration_mu=7.6, duration_sigma=1.2, power_base_w=150.0,
            environments=("conda/py311", "jupyter/lab", "conda/rapids-cpu"),
            name_tokens=("notebook", "etl", "pandas", "load", "explore", "merge"),
        ),
        AppArchetype(
            name="data-loader", domain="data pipelines", weight=0.12,
            op_mu=-2.10, op_sigma=0.40, job_sigma=0.15, drift_sigma=0.0050,
            eff_alpha=1.0, eff_beta=15.0,
            node_choices=(1, 2, 4), node_probs=(0.60, 0.25, 0.15),
            duration_mu=6.9, duration_sigma=1.1, power_base_w=130.0,
            environments=("conda/py311", "singularity/dali", "conda/webdataset"),
            name_tokens=("shard", "decode", "augment", "tfrecord", "stage", "pack"),
        ),
        AppArchetype(
            name="gnn-training", domain="machine learning", weight=0.10,
            op_mu=0.62, op_sigma=0.30, job_sigma=0.15, drift_sigma=0.0060,
            eff_alpha=1.9, eff_beta=5.2,
            node_choices=(1, 2, 4), node_probs=(0.55, 0.30, 0.15),
            duration_mu=8.4, duration_sigma=1.0, power_base_w=300.0,
            environments=("conda/dgl", "conda/pyg", "singularity/graph"),
            name_tokens=("gnn", "sage", "gat", "sample", "hetero", "link"),
        ),
        AppArchetype(
            name="video-analytics", domain="computer vision", weight=0.08,
            op_mu=0.70, op_sigma=0.32, job_sigma=0.15, drift_sigma=0.0055,
            eff_alpha=2.0, eff_beta=5.0,
            node_choices=(1, 2, 8), node_probs=(0.55, 0.30, 0.15),
            duration_mu=8.1, duration_sigma=1.1, power_base_w=280.0,
            environments=("singularity/ffmpeg", "conda/opencv", "conda/pytorch"),
            name_tokens=("decode", "track", "detect", "clip", "frames", "yolo"),
        ),
        AppArchetype(
            name="hpc-sim", domain="engineering", weight=0.10,
            op_mu=1.45, op_sigma=0.30, job_sigma=0.11, drift_sigma=0.0035,
            eff_alpha=3.0, eff_beta=2.6,
            node_choices=(2, 4, 8, 32), node_probs=(0.30, 0.30, 0.25, 0.15),
            duration_mu=8.8, duration_sigma=0.9, power_base_w=380.0,
            environments=("spack/openmpi", "singularity/ansys", "spack/petsc"),
            name_tokens=("fem", "solve", "mesh", "modal", "contact", "assembly"),
        ),
    )


def build_in2p3_catalog() -> tuple[AppArchetype, ...]:
    """HEP high-throughput mix (IN2P3 ridge: log10(2.622) ≈ 0.419).

    Event processing is dominated by pointer-chasing reconstruction and
    I/O-heavy skims (memory-bound); lattice QCD and generator-level
    theory jobs supply the compute-bound tail.
    """
    return (
        AppArchetype(
            name="event-reco", domain="high energy physics", weight=0.30,
            op_mu=-0.95, op_sigma=0.35, job_sigma=0.11, drift_sigma=0.0035,
            eff_alpha=1.4, eff_beta=8.0,
            node_choices=(1,), node_probs=(1.0,),
            duration_mu=8.7, duration_sigma=0.9, power_base_w=180.0,
            environments=("cvmfs/atlas", "cvmfs/cms", "cvmfs/lhcb"),
            name_tokens=("reco", "aod", "derive", "tracking", "calo", "trigger"),
        ),
        AppArchetype(
            name="mc-simulation", domain="high energy physics", weight=0.24,
            op_mu=0.30, op_sigma=0.30, job_sigma=0.14, drift_sigma=0.0050,
            eff_alpha=1.9, eff_beta=5.5,
            node_choices=(1, 2), node_probs=(0.85, 0.15),
            duration_mu=9.2, duration_sigma=0.9, power_base_w=200.0,
            environments=("cvmfs/geant4", "cvmfs/atlas", "cvmfs/belle2"),
            name_tokens=("geant", "simhit", "pileup", "digi", "minbias", "gen"),
        ),
        AppArchetype(
            name="ntuple-skim", domain="high energy physics", weight=0.18,
            op_mu=-1.80, op_sigma=0.40, job_sigma=0.15, drift_sigma=0.0045,
            eff_alpha=1.0, eff_beta=12.0,
            node_choices=(1,), node_probs=(1.0,),
            duration_mu=7.5, duration_sigma=1.1, power_base_w=140.0,
            environments=("cvmfs/root", "conda/uproot", "cvmfs/cms"),
            name_tokens=("skim", "ntuple", "slim", "hadd", "filter", "branch"),
        ),
        AppArchetype(
            name="lattice-qcd", domain="theory", weight=0.10,
            op_mu=1.10, op_sigma=0.28, job_sigma=0.10, drift_sigma=0.0030,
            eff_alpha=3.2, eff_beta=2.4,
            node_choices=(4, 16, 64, 128), node_probs=(0.30, 0.30, 0.25, 0.15),
            duration_mu=9.3, duration_sigma=0.8, power_base_w=260.0,
            environments=("spack/quda-cpu", "spack/openmpi", "spack/grid"),
            name_tokens=("hmc", "prop", "wilson", "ensemble", "cfg", "smear"),
        ),
        AppArchetype(
            name="ml-tagging", domain="machine learning", weight=0.10,
            op_mu=0.55, op_sigma=0.30, job_sigma=0.15, drift_sigma=0.0055,
            eff_alpha=2.0, eff_beta=5.0,
            node_choices=(1, 2), node_probs=(0.75, 0.25),
            duration_mu=8.2, duration_sigma=1.0, power_base_w=220.0,
            environments=("conda/pytorch", "cvmfs/lcg", "conda/xgboost"),
            name_tokens=("btag", "gnn", "train", "flavor", "jet", "score"),
        ),
        AppArchetype(
            name="astro-pipeline", domain="astroparticle", weight=0.08,
            op_mu=-1.30, op_sigma=0.40, job_sigma=0.14, drift_sigma=0.0045,
            eff_alpha=1.2, eff_beta=9.0,
            node_choices=(1, 2, 4), node_probs=(0.60, 0.25, 0.15),
            duration_mu=7.9, duration_sigma=1.1, power_base_w=160.0,
            environments=("cvmfs/km3net", "conda/astropy", "cvmfs/cta"),
            name_tokens=("calib", "shower", "photon", "stack", "catalog", "scan"),
        ),
    )


@register_system
class SupercloudSystem(SystemModel):
    """MIT-Supercloud-like ML datacenter (knee 4.375 Flops/Byte)."""

    name = "supercloud"

    @property
    def machine(self):
        """The frozen machine description (a spec dataclass, Table I shape)."""
        return SUPERCLOUD

    def flops_from_counters(self, perf2, perf3):  # unit: perf2=flops, perf3=flops -> flops
        """Eq. 4 with the AVX-512-as-two-slices multiplier of this machine."""
        return flops_from_counters(perf2, perf3, spec=self.machine)

    def moved_bytes_from_counters(self, perf4, perf5):  # unit: perf4=1, perf5=1 -> bytes
        """Eq. 5 with per-core 64 B line counters (no CMG replication)."""
        return moved_bytes_from_counters(perf4, perf5, spec=self.machine)

    def counters_from_flops_bytes(self, flops, moved_bytes, *, vector_fraction=0.9, read_fraction=0.6):
        """Exact inverse of Eqs. 4-5: synthesize ``perf2..perf5``."""
        return counters_from_flops_bytes(
            flops,
            moved_bytes,
            spec=self.machine,
            sve_fraction=vector_fraction,
            read_fraction=read_fraction,
        )

    def peak_gflops_at(self, frequency_ghz):  # unit: frequency_ghz=1 -> gflops/s
        """Node peak at a requested frequency (piecewise knee ladder)."""
        return self.machine.peak_gflops_at(frequency_ghz)

    def ceilings(self):
        """DDR main memory plus the slow inter-node fabric ceiling."""
        return (
            Ceiling("ddr", self.machine.peak_membw_gbs),
            Ceiling("fabric", 25.0),
        )

    def workload_config(self, *, scale, seed):
        """ML/AI mix; ~0.66 M jobs at full scale, early-January downtime."""
        from repro.fugaku.workload import WorkloadConfig

        return WorkloadConfig(
            scale=scale,
            seed=seed,
            full_scale_jobs=660_000,
            maintenance_days=(38, 40),
            catalog=build_supercloud_catalog(),
        )


@register_system
class IN2P3System(SystemModel):
    """IN2P3-CC-like HTC farm (knee 2.622 Flops/Byte)."""

    name = "in2p3"

    @property
    def machine(self):
        """The frozen machine description (a spec dataclass, Table I shape)."""
        return IN2P3

    def flops_from_counters(self, perf2, perf3):  # unit: perf2=flops, perf3=flops -> flops
        """Eq. 4 with this machine's four-slice vector multiplier."""
        return flops_from_counters(perf2, perf3, spec=self.machine)

    def moved_bytes_from_counters(self, perf4, perf5):  # unit: perf4=1, perf5=1 -> bytes
        """Eq. 5 with per-core 64 B line counters (no CMG replication)."""
        return moved_bytes_from_counters(perf4, perf5, spec=self.machine)

    def counters_from_flops_bytes(self, flops, moved_bytes, *, vector_fraction=0.9, read_fraction=0.6):
        """Exact inverse of Eqs. 4-5: synthesize ``perf2..perf5``."""
        return counters_from_flops_bytes(
            flops,
            moved_bytes,
            spec=self.machine,
            sve_fraction=vector_fraction,
            read_fraction=read_fraction,
        )

    def peak_gflops_at(self, frequency_ghz):  # unit: frequency_ghz=1 -> gflops/s
        """Node peak at a requested frequency (three-step clock ladder)."""
        return self.machine.peak_gflops_at(frequency_ghz)

    def ceilings(self):
        """DDR4 main memory plus the shared-storage I/O ceiling."""
        return (
            Ceiling("ddr4", self.machine.peak_membw_gbs),
            Ceiling("io", 12.0),
        )

    def workload_config(self, *, scale, seed):
        """HTC/HEP mix; ~1.1 M jobs at full scale, late-February downtime."""
        from repro.fugaku.workload import WorkloadConfig

        return WorkloadConfig(
            scale=scale,
            seed=seed,
            full_scale_jobs=1_100_000,
            maintenance_days=(82, 84),
            jobs_per_template_day=5.0,
            catalog=build_in2p3_catalog(),
        )
