"""The :class:`SystemModel` contract: pluggable physical machine models.

ROADMAP item 3: the characterizer was hardwired to Fugaku (A64FX counter
formulas, op_r ≈ 3.3, a single ridge).  This package extracts the
physical model behind an abstract contract so the same online α/β/θ
pipeline runs against any system, and the paper's own generality claim
(§III: "can be seamlessly configured and deployed in other HPC
systems") becomes something the repo can measure.

The contract is deliberately *unit-annotated*: every abstract method
carries the same ``# unit:`` def annotation its implementations must
repeat, so the flow tier's flops/bytes/seconds fixpoint resolves method
units by bare name **through the abstraction boundary** — a consumer
holding any ``SystemModel`` still gets ``flops`` out of
``flops_from_counters``.  The ``sysmodel-contract`` lint rule enforces
that every concrete system implements the full contract with matching
signatures and matching ``-> unit`` return conventions, which is what
keeps the harvest sound.

Concrete systems register themselves with
:func:`repro.systems.registry.register_system`; every construction site
outside a system's home module goes through
:func:`repro.systems.registry.get_system` (the ``system-dispatch`` rule
flags anything that names a concrete class directly).
"""

from __future__ import annotations

import abc

from repro.roofline.model import Roofline
from repro.roofline.multiceiling import MultiCeilingRoofline

__all__ = ["SystemModel"]


class SystemModel(abc.ABC):
    """One deployed system: counter semantics, peaks, workload habits.

    Subclasses implement the abstract contract below; the derived
    quantities (ridge point, rooflines, the characterizer transform) are
    shared and come for free.
    """

    #: registry key; every concrete system declares a unique lowercase name
    name: str = ""

    # -- the abstract contract (checked by ``sysmodel-contract``) -------------

    @property
    @abc.abstractmethod
    def machine(self):
        """The frozen machine description (a spec dataclass, Table I shape)."""

    @abc.abstractmethod
    def flops_from_counters(self, perf2, perf3):  # unit: perf2=flops, perf3=flops -> flops
        """Eq. 4-shaped counter mapping: total FP operations of a job."""

    @abc.abstractmethod
    def moved_bytes_from_counters(self, perf4, perf5):  # unit: perf4=1, perf5=1 -> bytes
        """Eq. 5-shaped counter mapping: total bytes moved to/from memory."""

    @abc.abstractmethod
    def counters_from_flops_bytes(self, flops, moved_bytes, *, vector_fraction=0.9, read_fraction=0.6):
        """Exact inverse of Eqs. 4-5: synthesize ``perf2..perf5``."""

    @abc.abstractmethod
    def peak_gflops_at(self, frequency_ghz):  # unit: frequency_ghz=1 -> gflops/s
        """Node peak at a requested frequency (knees scale with the clock)."""

    @abc.abstractmethod
    def ceilings(self):
        """Bandwidth ceilings, fastest first, as roofline ``Ceiling`` objects."""

    @abc.abstractmethod
    def workload_config(self, *, scale, seed):
        """This system's synthetic workload mix as a ``WorkloadConfig``."""

    # -- derived quantities (shared by every system) ---------------------------

    @property
    def peak_gflops_node(self):  # unit: -> gflops/s
        """Node peak FP64 performance in GFlops/s (boost mode)."""
        return self.machine.peak_gflops_node

    @property
    def peak_membw_gbs(self):  # unit: -> gb/s
        """Node peak memory bandwidth in GBytes/s."""
        return self.machine.peak_membw_gbs

    @property
    def frequencies_ghz(self):
        """Frequencies selectable at submission time, GHz, ascending."""
        return self.machine.frequencies_ghz

    @property
    def cores_per_node(self):
        return self.machine.cores_per_node

    @property
    def ridge_point(self):  # unit: -> flops/byte
        """op_r: the minimum operational intensity attaining node peak."""
        return self.machine.peak_gflops_node / self.machine.peak_membw_gbs

    def is_boost(self, frequency_ghz) -> bool:
        """Whether a requested frequency is this system's boost mode."""
        return frequency_ghz >= self.frequencies_ghz[-1]

    def roofline(self) -> Roofline:
        """The single-ceiling node roofline (Eq. 1)."""
        return Roofline(self.peak_gflops_node, self.peak_membw_gbs)

    def multi_ceiling(self) -> MultiCeilingRoofline:
        """The multi-ceiling roofline over every declared bandwidth ceiling."""
        return MultiCeilingRoofline(self.peak_gflops_node, self.ceilings())

    def counter_transform(self):
        """``perf2..perf5 -> (#flops, #moved_bytes)`` for the characterizer."""

        def transform(perf2, perf3, perf4, perf5):
            return (
                self.flops_from_counters(perf2, perf3),
                self.moved_bytes_from_counters(perf4, perf5),
            )

        return transform

    def generate_trace(self, *, scale: float = 1.0 / 30.0, seed: int = 2024):
        """A synthetic trace of this system's workload at a given scale."""
        from repro.fugaku.workload import WorkloadGenerator

        config = self.workload_config(scale=scale, seed=seed)
        return WorkloadGenerator(config, spec=self.machine).generate()
