"""Registry of concrete :class:`SystemModel` plugins.

All dispatch goes through :func:`get_system`; nothing outside a
system's home module constructs a concrete system class directly (the
``system-dispatch`` lint rule flags violations).  Instances are
singletons — system models are immutable descriptions, so one shared
instance per name is safe and keeps derived objects (rooflines,
transforms) cheap to re-request.
"""

from __future__ import annotations

__all__ = ["register_system", "get_system", "available_systems"]

_REGISTRY: dict[str, type] = {}
_INSTANCES: dict[str, object] = {}


def register_system(cls):
    """Class decorator registering a concrete system under ``cls.name``."""
    from repro.systems.base import SystemModel

    if not (isinstance(cls, type) and issubclass(cls, SystemModel)):
        raise TypeError(f"register_system expects a SystemModel subclass, got {cls!r}")
    name = getattr(cls, "name", "")
    if not name:
        raise ValueError(f"{cls.__name__} must declare a non-empty registry name")
    if name in _REGISTRY and _REGISTRY[name] is not cls:
        raise ValueError(f"system name {name!r} is already registered")
    _REGISTRY[name] = cls
    return cls


def get_system(name: str):
    """Resolve a registered system by name to its shared instance."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise KeyError(f"unknown system {name!r}; registered: {known}") from None
    instance = _INSTANCES.get(name)
    if instance is None:
        instance = cls()
        _INSTANCES[name] = instance
    return instance


def available_systems() -> tuple[str, ...]:
    """Sorted names of every registered system."""
    return tuple(sorted(_REGISTRY))
