"""Generic machine description consumed by :class:`SystemModel` plugins.

:class:`MachineSpec` generalizes the shape of
:class:`repro.fugaku.system.FugakuSpec` (Table I of the paper) to any
system the framework is deployed on.  The four-counter trace schema
(``perf2..perf5``, the F-DATA columns) is fixed project-wide, so every
machine's counter semantics are parameterized by the same three
constants: the vector-width multiplier behind the Eq. 4 scale factor,
the cache-line size behind Eq. 5, and the per-core replication of the
memory-group-wide bus counters.

The constructor validates the roofline invariants the
``sysmodel-dimension`` lint rule checks statically on declared literals:
positive peaks, ascending frequency ladder, and per-frequency peaks
monotone in frequency (which makes every multi-ceiling knee
``peak(f)/bw`` monotone in frequency too).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MachineSpec"]


@dataclass(frozen=True)
class MachineSpec:
    """Static description of one HPC system, mirroring Table I's rows."""

    name: str
    #: Peak FP64 performance of one node in GFlops/s (highest frequency).
    peak_gflops_node: float  # unit: gflops/s
    #: Peak memory bandwidth of one node in GBytes/s.
    peak_membw_gbs: float  # unit: gb/s
    cores_per_node: int
    #: Frequencies selectable at submission time, GHz, ascending; the
    #: last entry is the boost mode.
    frequencies_ghz: tuple[float, ...]
    #: (frequency GHz, node peak GFlops/s) pairs, ascending in both —
    #: the frequency-dependent knee ladder of the multi-ceiling roofline.
    frequency_peaks: tuple[tuple[float, float], ...]
    #: Vector width in bits; the vector-op counter reports ops per
    #: 128-bit slice, hence the Eq. 4 multiplier ``vector_bits / 128``.
    sve_bits: int = 128
    #: Bytes moved per memory bus request (one cache line).
    cache_line_bytes: int = 64  # unit: bytes
    #: Per-core replication factor of the bus counters: cores per memory
    #: group all reporting the group-wide value (1 = no replication).
    cores_per_cmg: int = 1  # unit: 1
    num_nodes: int = 1
    memory_gib_per_node: int = 0

    def __post_init__(self) -> None:
        if self.peak_gflops_node <= 0 or self.peak_membw_gbs <= 0:
            raise ValueError(f"{self.name}: machine peaks must be positive")
        if not self.frequencies_ghz:
            raise ValueError(f"{self.name}: at least one frequency is required")
        if list(self.frequencies_ghz) != sorted(self.frequencies_ghz):
            raise ValueError(f"{self.name}: frequencies_ghz must be ascending")
        if not self.frequency_peaks:
            raise ValueError(f"{self.name}: frequency_peaks must not be empty")
        freqs = [f for f, _ in self.frequency_peaks]
        peaks = [p for _, p in self.frequency_peaks]
        if freqs != sorted(freqs) or peaks != sorted(peaks):
            raise ValueError(
                f"{self.name}: frequency_peaks must be monotone — a higher "
                "clock cannot lower the attainable peak (knee monotonicity)"
            )
        if any(p <= 0 for p in peaks):
            raise ValueError(f"{self.name}: per-frequency peaks must be positive")
        if self.sve_bits < 128 or self.sve_bits % 128:
            raise ValueError(f"{self.name}: sve_bits must be a multiple of 128")
        if self.cache_line_bytes <= 0 or self.cores_per_cmg <= 0:
            raise ValueError(f"{self.name}: counter constants must be positive")

    @property
    def sve_multiplier(self) -> int:  # unit: -> 1
        """Number of 128-bit slices per vector (the Eq. 4 multiplier)."""
        return self.sve_bits // 128

    @property
    def ridge_point(self) -> float:  # unit: -> flops/byte
        """Operational intensity of the roofline ridge, Flops/Byte."""
        return self.peak_gflops_node / self.peak_membw_gbs

    def attainable_gflops(self, operational_intensity: float) -> float:  # unit: operational_intensity=flops/byte -> gflops/s
        """Roofline-attainable performance at a given intensity."""
        if operational_intensity < 0:
            raise ValueError("operational intensity must be non-negative")
        return min(self.peak_gflops_node, self.peak_membw_gbs * operational_intensity)

    def is_boost(self, frequency_ghz: float) -> bool:
        """Whether a requested frequency is the machine's boost mode."""
        return frequency_ghz >= self.frequencies_ghz[-1]

    def peak_gflops_at(self, frequency_ghz: float) -> float:  # unit: frequency_ghz=1 -> gflops/s
        """Node peak at a requested frequency (piecewise-linear ladder)."""
        pairs = self.frequency_peaks
        if frequency_ghz <= pairs[0][0]:
            return pairs[0][1]
        for (f0, p0), (f1, p1) in zip(pairs, pairs[1:]):
            if frequency_ghz <= f1:
                t = (frequency_ghz - f0) / (f1 - f0)
                return p0 + t * (p1 - p0)
        return pairs[-1][1]
