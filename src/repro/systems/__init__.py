"""Pluggable physical system models (ROADMAP item 3).

The :class:`SystemModel` contract abstracts one deployed HPC system —
counter→flops/bytes formulas, peak ceilings, frequency ladder, and a
synthetic workload mix — behind a registry, so the same online α/β/θ
pipeline runs on Fugaku and on non-Fugaku machines, and cross-system
transfer can be measured.  Dispatch goes through :func:`get_system`;
the ``repro.staticcheck.sysmodel`` lint tier enforces the contract
(interface conformance, unit-annotated formulas, no Fugaku-constant
leaks, no registry bypasses).

Importing this package registers the built-in systems.
"""

from repro.systems.base import SystemModel
from repro.systems.fugaku import FugakuSystem
from repro.systems.registry import available_systems, get_system, register_system
from repro.systems.spec import MachineSpec
from repro.systems.synthetic import IN2P3System, SupercloudSystem

__all__ = [
    "SystemModel",
    "MachineSpec",
    "register_system",
    "get_system",
    "available_systems",
    "FugakuSystem",
    "SupercloudSystem",
    "IN2P3System",
]
