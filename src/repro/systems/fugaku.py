"""Fugaku as a registered :class:`SystemModel` plugin.

This is a *port*, not a move: the machine constants and the Eq. 4/5
counter formulas stay in :mod:`repro.fugaku.system` and
:mod:`repro.fugaku.counters` — those two modules (plus this adapter)
are the ``system-constant-leak`` rule's allowlist — and this class only
delegates, so every Fugaku number continues to flow from a single
definition site and the pre-refactor results stay bit-identical.
"""

from __future__ import annotations

from repro.fugaku.counters import (
    counters_from_flops_bytes,
    flops_from_counters,
    moved_bytes_from_counters,
)
from repro.fugaku.system import FUGAKU
from repro.roofline.multiceiling import Ceiling
from repro.systems.base import SystemModel
from repro.systems.registry import register_system

__all__ = ["FugakuSystem"]


@register_system
class FugakuSystem(SystemModel):
    """RIKEN Fugaku: A64FX nodes, Table I peaks, the F-DATA workload."""

    name = "fugaku"

    @property
    def machine(self):
        """The frozen machine description (a spec dataclass, Table I shape)."""
        return FUGAKU

    def flops_from_counters(self, perf2, perf3):  # unit: perf2=flops, perf3=flops -> flops
        """Eq. 4: scalar ops plus 512-bit SVE ops times four 128-bit slices."""
        return flops_from_counters(perf2, perf3, spec=FUGAKU)

    def moved_bytes_from_counters(self, perf4, perf5):  # unit: perf4=1, perf5=1 -> bytes
        """Eq. 5: CMG-wide bus reads+writes times 256 B over 12 cores."""
        return moved_bytes_from_counters(perf4, perf5, spec=FUGAKU)

    def counters_from_flops_bytes(self, flops, moved_bytes, *, vector_fraction=0.9, read_fraction=0.6):
        """Exact inverse of Eqs. 4-5: synthesize ``perf2..perf5``."""
        return counters_from_flops_bytes(
            flops,
            moved_bytes,
            spec=FUGAKU,
            sve_fraction=vector_fraction,
            read_fraction=read_fraction,
        )

    def peak_gflops_at(self, frequency_ghz):  # unit: frequency_ghz=1 -> gflops/s
        """Node peak at a requested frequency (knees scale with the clock)."""
        return FUGAKU.peak_gflops_node * (frequency_ghz / FUGAKU.frequencies_ghz[-1])

    def ceilings(self):
        """Bandwidth ceilings, fastest first, as roofline ``Ceiling`` objects."""
        return (Ceiling("hbm2", FUGAKU.peak_membw_gbs),)

    def workload_config(self, *, scale, seed):
        """This system's synthetic workload mix as a ``WorkloadConfig``."""
        from repro.fugaku.workload import WorkloadConfig

        return WorkloadConfig(scale=scale, seed=seed)
