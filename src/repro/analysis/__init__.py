"""§IV workload analysis: the characterization figures, Table II and the
§V-C.d system-impact estimate."""

from repro.analysis.distributions import (
    jobs_per_day,
    class_share_per_day,
    detect_maintenance_gap,
)
from repro.analysis.roofline_plots import (
    fig3_scatter_summary,
    fig5_frequency_split,
    frequency_position_association,
)
from repro.analysis.tables import table2_distribution, Table2
from repro.analysis.impact import ImpactEstimate, estimate_impact
from repro.analysis.user_mix import UserMixSummary, per_user_class_mix, top_users_by_jobs

__all__ = [
    "jobs_per_day",
    "class_share_per_day",
    "detect_maintenance_gap",
    "fig3_scatter_summary",
    "fig5_frequency_split",
    "frequency_position_association",
    "table2_distribution",
    "Table2",
    "ImpactEstimate",
    "estimate_impact",
    "UserMixSummary",
    "per_user_class_mix",
    "top_users_by_jobs",
]
