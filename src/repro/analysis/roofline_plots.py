"""Roofline scatter analyses: Fig. 3 (all jobs) and Fig. 5 (by frequency).

Figure 3's reading: operational intensity is strongly skewed below the
ridge point, and most jobs sit far under the ceilings with a few
well-engineered clusters near them.  Figure 5's reading: the user-selected
frequency shows *no observable correlation* with the job's position on the
Roofline plane.  Both readings are reduced to statistics here.
"""

from __future__ import annotations

import numpy as np

from repro.core.job_characterizer import JobCharacterizer
from repro.fugaku.system import BOOST_MODE_GHZ
from repro.fugaku.trace import JobTrace
from repro.roofline.binning import RooflineScatterSummary

__all__ = [
    "fig3_scatter_summary",
    "fig5_frequency_split",
    "frequency_position_association",
]


def fig3_scatter_summary(
    trace: JobTrace, characterizer: JobCharacterizer | None = None
) -> RooflineScatterSummary:
    """Fig. 3: log-binned scatter + skew/ceiling statistics for all jobs."""
    characterizer = characterizer or JobCharacterizer()
    p, _, op, _ = characterizer.roofline_coordinates(trace)
    return RooflineScatterSummary.from_jobs(op, p, characterizer.roofline)


def fig5_frequency_split(
    trace: JobTrace, characterizer: JobCharacterizer | None = None
) -> dict[float, RooflineScatterSummary]:
    """Fig. 5: one scatter summary per requested frequency."""
    characterizer = characterizer or JobCharacterizer()
    p, _, op, _ = characterizer.roofline_coordinates(trace)
    freq = trace["freq_req_ghz"]
    out: dict[float, RooflineScatterSummary] = {}
    for f in np.unique(freq):
        mask = freq == f
        out[float(f)] = RooflineScatterSummary.from_jobs(
            op[mask], p[mask], characterizer.roofline
        )
    return out


def frequency_position_association(
    trace: JobTrace, characterizer: JobCharacterizer | None = None
) -> float:
    """Point-biserial correlation between boost-mode choice and log10(op).

    Values near 0 encode Fig. 5's finding that users' frequency choice
    does not track the job's roofline position.
    """
    characterizer = characterizer or JobCharacterizer()
    _, _, op, _ = characterizer.roofline_coordinates(trace)
    boost = (trace["freq_req_ghz"] >= BOOST_MODE_GHZ).astype(np.float64)
    x = np.log10(np.maximum(op, 1e-12))
    if np.std(boost) == 0 or np.std(x) == 0:
        return 0.0
    return float(np.corrcoef(boost, x)[0, 1])
