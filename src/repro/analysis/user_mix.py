"""Per-user workload composition analysis.

The paper's encoder leans on *user name* as a predictive feature (§V-A);
this analysis quantifies why that works on the characterized trace: most
users' jobs are heavily dominated by one class (their templates come from
a small set of application archetypes), so knowing the user alone is a
strong prior for the memory/compute-bound label.

Aggregations run through the jobs data storage's SQL layer where a table
is available (exercising the GROUP BY executor), or directly over trace
columns.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fugaku.trace import JobTrace
from repro.roofline.characterize import COMPUTE_BOUND, MEMORY_BOUND
from repro.storage.engine import Database

__all__ = ["UserMixSummary", "per_user_class_mix", "top_users_by_jobs"]


@dataclass(frozen=True)
class UserMixSummary:
    """How class-specialized the user population is.

    ``dominance`` per user = max(share memory-bound, share compute-bound);
    1.0 means the user's jobs are single-class.
    """

    n_users: int
    mean_dominance: float
    frac_users_over_90pct_one_class: float
    #: (user, n_jobs, memory_share) for the busiest users
    top_users: tuple


def top_users_by_jobs(db: Database, k: int = 10) -> list[dict]:
    """Busiest users via the SQL GROUP BY path: [{user_name, count}, ...]."""
    if k < 1:
        raise ValueError("k must be >= 1")
    result = db.execute("SELECT user_name, COUNT(*) FROM jobs GROUP BY user_name")
    rows = sorted(result.iter_rows(), key=lambda r: (-r["count"], r["user_name"]))
    return rows[:k]


def per_user_class_mix(
    trace: JobTrace, labels: np.ndarray, *, top_k: int = 10, min_jobs: int = 5
) -> UserMixSummary:
    """Class dominance statistics per user.

    Users with fewer than ``min_jobs`` jobs are excluded from the
    dominance statistics (one-off users are trivially "dominant").
    """
    labels = np.asarray(labels)
    if labels.shape[0] != len(trace):
        raise ValueError("labels length does not match trace")
    users = trace["user_name"]
    uniq, inverse = np.unique(users, return_inverse=True)
    n_users = len(uniq)
    mem_counts = np.zeros(n_users)
    tot_counts = np.zeros(n_users)
    np.add.at(tot_counts, inverse, 1.0)
    np.add.at(mem_counts, inverse, (labels == MEMORY_BOUND).astype(np.float64))

    eligible = tot_counts >= min_jobs
    if not eligible.any():
        raise ValueError(f"no user has >= {min_jobs} jobs")
    mem_share = mem_counts[eligible] / tot_counts[eligible]
    dominance = np.maximum(mem_share, 1.0 - mem_share)

    order = np.argsort(-tot_counts)[:top_k]
    top = tuple(
        (str(uniq[i]), int(tot_counts[i]), float(mem_counts[i] / tot_counts[i]))
        for i in order
    )
    return UserMixSummary(
        n_users=int(eligible.sum()),
        mean_dominance=float(dominance.mean()),
        frac_users_over_90pct_one_class=float(np.mean(dominance >= 0.9)),
        top_users=top,
    )
