"""Table II: distribution of job types by requested frequency."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.job_characterizer import JobCharacterizer
from repro.fugaku.system import BOOST_MODE_GHZ, NORMAL_MODE_GHZ
from repro.fugaku.trace import JobTrace
from repro.roofline.characterize import COMPUTE_BOUND, MEMORY_BOUND

__all__ = ["Table2", "table2_distribution"]


@dataclass(frozen=True)
class Table2:
    """The 2x2 contingency table of the paper's Table II."""

    normal_memory: int
    normal_compute: int
    boost_memory: int
    boost_compute: int

    @property
    def total(self) -> int:
        return self.normal_memory + self.normal_compute + self.boost_memory + self.boost_compute

    @property
    def memory_total(self) -> int:
        return self.normal_memory + self.boost_memory

    @property
    def compute_total(self) -> int:
        return self.normal_compute + self.boost_compute

    @property
    def memory_to_compute_ratio(self) -> float:
        """Paper: "around 3.5 times"."""
        return self.memory_total / max(1, self.compute_total)

    @property
    def frac_memory_in_normal(self) -> float:
        """Paper: ≈54% of memory-bound jobs run in normal mode."""
        return self.normal_memory / max(1, self.memory_total)

    @property
    def frac_compute_in_boost(self) -> float:
        """Paper: only ≈30% of compute-bound jobs run in boost mode."""
        return self.boost_compute / max(1, self.compute_total)

    def rows(self) -> list[list]:
        """Rows formatted like the paper's table."""
        return [
            ["2.0 GHz (normal mode)", self.normal_memory, self.normal_compute,
             self.normal_memory + self.normal_compute],
            ["2.2 GHz (boost mode)", self.boost_memory, self.boost_compute,
             self.boost_memory + self.boost_compute],
            ["Total", self.memory_total, self.compute_total, self.total],
        ]


def table2_distribution(
    trace: JobTrace,
    labels: np.ndarray | None = None,
    characterizer: JobCharacterizer | None = None,
) -> Table2:
    """Compute Table II from a trace (labels characterized if not given)."""
    if labels is None:
        characterizer = characterizer or JobCharacterizer()
        labels = characterizer.labels_from_trace(trace)
    labels = np.asarray(labels)
    freq = trace["freq_req_ghz"]
    normal = freq < BOOST_MODE_GHZ
    mem = labels == MEMORY_BOUND
    comp = labels == COMPUTE_BOUND
    return Table2(
        normal_memory=int(np.sum(normal & mem)),
        normal_compute=int(np.sum(normal & comp)),
        boost_memory=int(np.sum(~normal & mem)),
        boost_compute=int(np.sum(~normal & comp)),
    )
