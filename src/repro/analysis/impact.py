"""System-impact estimate of §V-C.d.

The paper, citing Kodama et al.'s Fugaku power-management study, assumes:

- running a *memory-bound* job in normal instead of boost mode cuts its
  power draw by ≈15% without hurting performance;
- running a *compute-bound* job in boost instead of normal mode cuts its
  duration by ≈10%.

Given the characterized trace, the mis-configured populations are the
memory-bound jobs submitted in boost mode and the compute-bound jobs
submitted in normal mode; a classifier with accuracy ``a`` captures a
fraction ``a`` of each.  The estimator reports the power, energy and
node-hour savings semi-automatic frequency selection would have achieved.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.job_characterizer import JobCharacterizer
from repro.fugaku.system import BOOST_MODE_GHZ
from repro.fugaku.trace import JobTrace
from repro.roofline.characterize import COMPUTE_BOUND, MEMORY_BOUND

__all__ = ["ImpactEstimate", "estimate_impact"]

#: Per-job effects of correct frequency selection (Kodama et al. 2020).
POWER_REDUCTION_NORMAL_MODE = 0.15
DURATION_REDUCTION_BOOST_MODE = 0.10


@dataclass(frozen=True)
class ImpactEstimate:
    """Savings from reclassifying mis-configured jobs."""

    #: memory-bound jobs found running in boost mode
    n_memory_in_boost: int
    mean_power_w_memory_in_boost: float
    mean_duration_s_memory_in_boost: float
    #: compute-bound jobs found running in normal mode
    n_compute_in_normal: int
    mean_duration_s_compute_in_normal: float
    #: classifier accuracy folded into the savings
    classifier_accuracy: float
    #: aggregate savings
    power_saving_w_per_job: float
    total_power_saving_mw: float
    total_energy_saving_gj: float
    saved_seconds_per_compute_job: float
    total_saved_node_hours: float

    def summary_rows(self) -> list[list]:
        return [
            ["memory-bound @ boost", self.n_memory_in_boost,
             f"{self.power_saving_w_per_job:.0f} W/job",
             f"{self.total_power_saving_mw:.3f} MW", f"{self.total_energy_saving_gj:.3f} GJ"],
            ["compute-bound @ normal", self.n_compute_in_normal,
             f"{self.saved_seconds_per_compute_job:.0f} s/job",
             f"{self.total_saved_node_hours:.0f} node-hours", "-"],
        ]


def estimate_impact(
    trace: JobTrace,
    labels: np.ndarray | None = None,
    *,
    classifier_accuracy: float = 0.90,
    characterizer: JobCharacterizer | None = None,
) -> ImpactEstimate:
    """Estimate the §V-C.d savings on a characterized trace."""
    if not 0.0 < classifier_accuracy <= 1.0:
        raise ValueError("classifier_accuracy must be in (0, 1]")
    if labels is None:
        characterizer = characterizer or JobCharacterizer()
        labels = characterizer.labels_from_trace(trace)
    labels = np.asarray(labels)
    freq = trace["freq_req_ghz"]
    boost = freq >= BOOST_MODE_GHZ

    mem_boost = (labels == MEMORY_BOUND) & boost
    comp_normal = (labels == COMPUTE_BOUND) & ~boost

    n_mb = int(np.sum(mem_boost))
    n_cn = int(np.sum(comp_normal))

    power_mb = trace["power_avg_w"][mem_boost]
    dur_mb = trace["duration"][mem_boost]
    dur_cn = trace["duration"][comp_normal]
    nodes_cn = trace["nodes_alloc"][comp_normal]

    mean_power = float(power_mb.mean()) if n_mb else 0.0
    mean_dur_mb = float(dur_mb.mean()) if n_mb else 0.0
    mean_dur_cn = float(dur_cn.mean()) if n_cn else 0.0

    a = classifier_accuracy
    per_job_power_saving = POWER_REDUCTION_NORMAL_MODE * mean_power
    total_power_w = a * POWER_REDUCTION_NORMAL_MODE * float(power_mb.sum())
    total_energy_j = a * POWER_REDUCTION_NORMAL_MODE * float((power_mb * dur_mb).sum())

    saved_s_per_job = DURATION_REDUCTION_BOOST_MODE * mean_dur_cn
    total_node_hours = (
        a * DURATION_REDUCTION_BOOST_MODE * float((dur_cn * nodes_cn).sum()) / 3600.0
    )

    return ImpactEstimate(
        n_memory_in_boost=n_mb,
        mean_power_w_memory_in_boost=mean_power,
        mean_duration_s_memory_in_boost=mean_dur_mb,
        n_compute_in_normal=n_cn,
        mean_duration_s_compute_in_normal=mean_dur_cn,
        classifier_accuracy=a,
        power_saving_w_per_job=per_job_power_saving,
        total_power_saving_mw=total_power_w / 1e6,
        total_energy_saving_gj=total_energy_j / 1e9,
        saved_seconds_per_compute_job=saved_s_per_job,
        total_saved_node_hours=total_node_hours,
    )
