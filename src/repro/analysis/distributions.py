"""Temporal distributions: Fig. 2 (submissions/day) and Fig. 4 (class share).

Figure 2 of the paper shows a uniform submission rate with a dip for the
early-February maintenance; Figure 4 shows that the memory/compute-bound
proportion is roughly constant in time.
"""

from __future__ import annotations

import numpy as np

from repro.fugaku.trace import JobTrace
from repro.fugaku.workload import DAY_SECONDS
from repro.roofline.characterize import MEMORY_BOUND

__all__ = ["jobs_per_day", "class_share_per_day", "detect_maintenance_gap"]


def jobs_per_day(trace: JobTrace, n_days: int | None = None):
    """Fig. 2 series: submissions per day.

    Returns ``(days, counts)`` where ``days`` are integer day indices since
    the trace start.
    """
    day = (trace["submit_time"] / DAY_SECONDS).astype(np.int64)
    if np.any(day < 0):
        raise ValueError("negative submit times in trace")
    n = int(n_days if n_days is not None else day.max() + 1)
    counts = np.bincount(day, minlength=n)[:n]
    return np.arange(n), counts


def class_share_per_day(trace: JobTrace, labels: np.ndarray, n_days: int | None = None):
    """Fig. 4 series: per-day counts of each class and memory-bound share.

    Returns ``(days, mem_counts, comp_counts, mem_share)`` with NaN share
    on empty days.
    """
    labels = np.asarray(labels)
    if labels.shape[0] != len(trace):
        raise ValueError("labels length does not match trace")
    day = (trace["submit_time"] / DAY_SECONDS).astype(np.int64)
    n = int(n_days if n_days is not None else day.max() + 1)
    mem = np.bincount(day[labels == MEMORY_BOUND], minlength=n)[:n]
    comp = np.bincount(day[labels != MEMORY_BOUND], minlength=n)[:n]
    total = mem + comp
    with np.errstate(invalid="ignore"):
        share = np.where(total > 0, mem / np.maximum(total, 1), np.nan)
    return np.arange(n), mem, comp, share


def detect_maintenance_gap(counts: np.ndarray, *, threshold: float = 0.2) -> list[int]:
    """Days whose submission count falls below ``threshold`` x median.

    Applied to the Fig. 2 series this recovers the scheduled-maintenance
    shutdown days.
    """
    counts = np.asarray(counts, dtype=np.float64)
    if counts.size == 0:
        raise ValueError("empty counts")
    med = np.median(counts[counts > 0]) if np.any(counts > 0) else 0.0
    return np.flatnonzero(counts < threshold * med).tolist()
