"""Balanced chunking of index ranges and arrays."""

from __future__ import annotations

import numpy as np

__all__ = ["chunk_bounds", "chunk_indices", "split_array"]


def chunk_bounds(n: int, n_chunks: int) -> list[tuple[int, int]]:
    """Split ``range(n)`` into ``n_chunks`` contiguous, balanced ``[lo, hi)``.

    The first ``n % n_chunks`` chunks get one extra element; empty chunks
    are dropped (so fewer than ``n_chunks`` pairs may be returned).

    >>> chunk_bounds(10, 3)
    [(0, 4), (4, 7), (7, 10)]
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if n_chunks < 1:
        raise ValueError("n_chunks must be >= 1")
    base, extra = divmod(n, n_chunks)
    bounds = []
    lo = 0
    for i in range(n_chunks):
        size = base + (1 if i < extra else 0)
        if size == 0:
            break
        bounds.append((lo, lo + size))
        lo += size
    return bounds


def chunk_indices(n: int, chunk_size: int) -> list[tuple[int, int]]:  # hotpath: chunks every batched query
    """Split ``range(n)`` into fixed-size ``[lo, hi)`` chunks (last may be short)."""
    if n < 0:
        raise ValueError("n must be non-negative")
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    return [(lo, min(lo + chunk_size, n)) for lo in range(0, n, chunk_size)]


def split_array(arr: np.ndarray, n_chunks: int) -> list[np.ndarray]:
    """Split an array into balanced row-views (no copies)."""
    arr = np.asarray(arr)
    return [arr[lo:hi] for lo, hi in chunk_bounds(arr.shape[0], n_chunks)]
