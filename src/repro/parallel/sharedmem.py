"""Shared-memory numpy arrays for zero-copy hand-off to process pools.

Wraps :mod:`multiprocessing.shared_memory` with ndarray semantics and
explicit ownership: the creating side calls :meth:`close` + :meth:`unlink`,
attachers only :meth:`close`.  Context-manager use handles both.
"""

from __future__ import annotations

from multiprocessing import shared_memory

import numpy as np

from repro.sanitizers import enabled, new_lock, record

__all__ = ["SharedArray"]


class SharedArray:
    """An ndarray view over a named shared-memory segment."""

    def __init__(self, shm: shared_memory.SharedMemory, shape, dtype, *, owner: bool) -> None:
        self._shm = shm
        self._owner = owner
        self.array = np.ndarray(shape, dtype=dtype, buffer=shm.buf)
        # The buffer is handed between the submitting thread and executor
        # callbacks; serialize teardown so a concurrent close/unlink pair
        # cannot double-free the mapping or yank it under a live view.
        self._lifecycle = new_lock(f"repro.parallel.SharedArray.{shm.name}")
        self._closed = False
        self._unlinked = False

    # -- constructors ---------------------------------------------------------

    @classmethod
    def create(cls, shape, dtype=np.float64) -> "SharedArray":
        """Allocate a new zeroed shared array (this side owns the segment)."""
        shape = tuple(int(s) for s in np.atleast_1d(shape))
        nbytes = int(np.prod(shape)) * np.dtype(dtype).itemsize
        if nbytes <= 0:
            raise ValueError("shared array must have positive size")
        shm = shared_memory.SharedMemory(create=True, size=nbytes)
        out = cls(shm, shape, dtype, owner=True)
        out.array[...] = 0
        return out

    @classmethod
    def from_array(cls, arr: np.ndarray) -> "SharedArray":
        """Copy an existing array into new shared memory."""
        arr = np.ascontiguousarray(arr)
        out = cls.create(arr.shape, arr.dtype)
        out.array[...] = arr
        return out

    @classmethod
    def attach(cls, name: str, shape, dtype) -> "SharedArray":
        """Attach to a segment created elsewhere (non-owning)."""
        try:
            shm = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            # The runtime oracle for the static ``sharedmem-protocol``
            # rule: the segment name is gone, so the owner unlinked it
            # while this side still expected to use it.
            if enabled():
                record(
                    "sharedmem-use-after-unlink",
                    segment=name,
                    reason="attach after the owner unlinked the segment",
                )
            raise
        return cls(shm, tuple(shape), dtype, owner=False)

    # -- descriptor for pickling across processes --------------------------------

    @property
    def name(self) -> str:
        return self._shm.name

    def descriptor(self) -> dict:
        """Pickle-friendly handle: pass this to workers, then ``attach``."""
        return {
            "name": self.name,
            "shape": list(self.array.shape),
            "dtype": str(self.array.dtype),
        }

    @classmethod
    def from_descriptor(cls, desc: dict) -> "SharedArray":
        return cls.attach(desc["name"], desc["shape"], np.dtype(desc["dtype"]))

    # -- lifecycle -----------------------------------------------------------------

    def close(self) -> None:
        """Detach this process's mapping (idempotent, thread-safe)."""
        with self._lifecycle:
            if self._closed:
                return
            self._closed = True
            self.array = None
            self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment (owner only; idempotent, thread-safe)."""
        with self._lifecycle:
            if self._unlinked:
                return
            if not self._owner and enabled():
                record(
                    "sharedmem-protocol",
                    segment=self.name,
                    reason="non-owning attacher unlinked the segment",
                )
            self._unlinked = True
            self._shm.unlink()

    def __enter__(self) -> "SharedArray":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
        if self._owner:
            try:
                self.unlink()
            except FileNotFoundError:  # pragma: no cover - double unlink
                pass
