"""Ordered parallel map with pluggable backends.

``parallel_map(fn, items)`` preserves input order in its output and runs
serially when only one worker is available (or requested), so callers can
sprinkle it on data-parallel loops without branching on the machine size.
Exceptions raised by any task propagate to the caller after the pool is
drained.
"""

from __future__ import annotations

import functools
import multiprocessing
import os
import pickle
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

__all__ = [
    "ExecutorConfig",
    "parallel_map",
    "parallel_map_sharded",
    "effective_workers",
    "ensure_picklable",
]


@dataclass(frozen=True)
class ExecutorConfig:
    """How a parallel region should run.

    backend:
        "serial", "thread" or "process".  Threads suit BLAS-heavy and
        IO-bound work (the GIL is released there); processes suit pure-
        Python CPU-bound work at the cost of pickling.
    n_workers:
        Worker count; ``None`` means ``os.cpu_count()``.
    start_method:
        "fork", "spawn" or "forkserver" for the process backend;
        ``None`` uses the platform default.  Pinning "spawn" guarantees
        workers inherit no parent locks or handles, at the cost of
        re-importing the task's module in each worker.
    """

    backend: str = "serial"
    n_workers: int | None = None
    start_method: str | None = None

    def __post_init__(self) -> None:
        if self.backend not in ("serial", "thread", "process"):
            raise ValueError(f"unknown backend {self.backend!r}")
        if self.n_workers is not None and self.n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if self.start_method is not None:
            if self.backend != "process":
                raise ValueError("start_method only applies to the 'process' backend")
            if self.start_method not in ("fork", "spawn", "forkserver"):
                raise ValueError(f"unknown start_method {self.start_method!r}")


def effective_workers(config: ExecutorConfig) -> int:
    """Worker count the config resolves to on this machine."""
    if config.backend == "serial":
        return 1
    return config.n_workers or os.cpu_count() or 1


def _unpicklable_path(obj: object, path: str, depth: int = 0) -> str | None:
    """Object path of the innermost unpicklable constituent, or None.

    Descends the same graph pickle would serialize — closure cells (named
    by ``co_freevars``), the instance behind a bound method, ``partial``
    components and instance ``__dict__`` attributes — so the error names
    the actual culprit (``fn.__closure__['lock']``) instead of the opaque
    top-level failure pickle reports.  Depth-bounded: past a few levels
    the path stops being more useful than pickle's own message.
    """
    try:
        pickle.dumps(obj)
        return None
    except Exception:  # staticcheck: ignore[silent-except] - any raise means "unpicklable"; the walk below names the culprit
        pass
    if depth >= 4:
        return path
    code = getattr(obj, "__code__", None)
    cells = getattr(obj, "__closure__", None)
    if code is not None and cells:
        for name, cell in zip(code.co_freevars, cells):
            try:
                value = cell.cell_contents
            except ValueError:  # empty cell
                continue
            deeper = _unpicklable_path(value, f"{path}.__closure__[{name!r}]", depth + 1)
            if deeper is not None:
                return deeper
    bound_self = getattr(obj, "__self__", None)
    if bound_self is not None:
        deeper = _unpicklable_path(bound_self, f"{path}.__self__", depth + 1)
        if deeper is not None:
            return deeper
    if isinstance(obj, functools.partial):
        for i, arg in enumerate(obj.args):
            deeper = _unpicklable_path(arg, f"{path}.args[{i}]", depth + 1)
            if deeper is not None:
                return deeper
        for key, value in obj.keywords.items():
            deeper = _unpicklable_path(value, f"{path}.keywords[{key!r}]", depth + 1)
            if deeper is not None:
                return deeper
        return _unpicklable_path(obj.func, f"{path}.func", depth + 1)
    attrs = getattr(obj, "__dict__", None)
    if isinstance(attrs, dict):
        for name in sorted(attrs):
            deeper = _unpicklable_path(attrs[name], f"{path}.{name}", depth + 1)
            if deeper is not None:
                return deeper
    return path


def ensure_picklable(fn: Callable) -> None:
    """Pre-flight for the process backend: fail fast on unpicklable tasks.

    Lambdas, closures and locally-defined functions cannot cross a process
    boundary; without this check the pool spawns first and the pickling
    error surfaces mid-run from inside ``concurrent.futures`` with no hint
    of which callable was at fault.

    Raises
    ------
    ValueError
        Naming the offending callable, the *object path* of the innermost
        unpicklable constituent (which closure cell, which attribute of
        the bound instance, which ``partial`` argument), and how to fix it.
    """
    try:
        pickle.dumps(fn)
    except (pickle.PicklingError, TypeError, AttributeError) as exc:
        name = getattr(fn, "__qualname__", None) or repr(fn)
        culprit = _unpicklable_path(fn, name) or name
        raise ValueError(
            f"parallel_map: task {name!r} is not picklable, so it cannot run "
            f"on the 'process' backend; the unpicklable part is {culprit!r} "
            f"({exc}). Define the task at module top level with picklable "
            "state, or use the 'thread' or 'serial' backend."
        ) from exc


def parallel_map(
    fn: Callable,
    items: Iterable,
    *,
    config: ExecutorConfig | None = None,
) -> list:
    """Apply ``fn`` to every item, preserving order.

    Falls back to a plain loop when the config resolves to one worker —
    the common case on the single-core evaluation machine — so there is no
    pool overhead on the serial path.
    """
    config = config or ExecutorConfig()
    items = list(items)
    workers = min(effective_workers(config), max(1, len(items)))
    if workers <= 1 or config.backend == "serial":
        return [fn(x) for x in items]
    if config.backend == "thread":
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(fn, items))
    ensure_picklable(fn)
    context = (
        multiprocessing.get_context(config.start_method)
        if config.start_method is not None
        else None
    )
    with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
        return list(pool.map(fn, items))


def parallel_map_sharded(
    fn: Callable,
    items: Iterable,
    *,
    config: ExecutorConfig | None = None,
    shards_per_worker: int = 4,
) -> list:
    """``parallel_map`` with contiguous item shards instead of one task per item.

    For fine-grained tasks (e.g. one forest tree per item) the per-task
    submission overhead of a pool can rival the task itself; sharding
    submits ``workers * shards_per_worker`` contiguous blocks, each running
    a plain loop.  Output order and results are identical to
    ``parallel_map`` for a pure ``fn``.  The process backend falls back to
    per-item ``parallel_map`` (a shard closure cannot cross a process
    boundary); sharding targets the thread backend, where BLAS-heavy tasks
    release the GIL.
    """
    if shards_per_worker < 1:
        raise ValueError("shards_per_worker must be >= 1")
    config = config or ExecutorConfig()
    items = list(items)
    workers = min(effective_workers(config), max(1, len(items)))
    if workers <= 1 or config.backend == "serial":
        return [fn(x) for x in items]
    if config.backend == "process":
        return parallel_map(fn, items, config=config)
    from repro.parallel.chunking import chunk_bounds

    def run_shard(bounds: tuple[int, int]) -> list:
        lo, hi = bounds
        return [fn(items[i]) for i in range(lo, hi)]

    shards = chunk_bounds(len(items), workers * shards_per_worker)
    with ThreadPoolExecutor(max_workers=workers) as pool:
        return [out for shard in pool.map(run_shard, shards) for out in shard]
