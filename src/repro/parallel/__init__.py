"""HPC-parallel substrate.

The guides this reproduction follows (mpi4py tutorial, Numba performance
tips, Scientific-Python optimization notes) shape this package: vectorize
first, then parallelize with explicit chunking and communicator-style
collectives rather than ad-hoc thread soup.

- :mod:`repro.parallel.chunking` — balanced partitioning of index ranges
  and arrays (the building block of every data-parallel loop here).
- :mod:`repro.parallel.executor` — ordered parallel map over chunks with
  thread/process/serial backends and automatic fallback on a single core.
- :mod:`repro.parallel.communicator` — an MPI-like local communicator
  (bcast / scatter / gather / allreduce / barrier) over worker threads,
  mirroring the mpi4py idioms for code that wants collective semantics.
- :mod:`repro.parallel.sharedmem` — numpy arrays backed by
  :mod:`multiprocessing.shared_memory` for zero-copy hand-off to process
  pools.
"""

from repro.parallel.chunking import chunk_bounds, chunk_indices, split_array
from repro.parallel.executor import (
    ensure_picklable,
    parallel_map,
    parallel_map_sharded,
    ExecutorConfig,
)
from repro.parallel.communicator import LocalCommunicator
from repro.parallel.sharedmem import SharedArray

__all__ = [
    "chunk_bounds",
    "chunk_indices",
    "split_array",
    "ensure_picklable",
    "parallel_map",
    "parallel_map_sharded",
    "ExecutorConfig",
    "LocalCommunicator",
    "SharedArray",
]
