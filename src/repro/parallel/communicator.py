"""MPI-style collectives over local worker threads.

Mirrors the mpi4py tutorial's communicator surface (``bcast``, ``scatter``,
``gather``, ``allreduce``, ``barrier``) for in-process SPMD regions: a
fixed group of ranks runs the same function and synchronizes through the
communicator.  This keeps algorithm code written against collective
semantics portable to a real MPI deployment, while executing correctly on
one node (or one core) here.
"""

from __future__ import annotations

import threading
from typing import Callable

from repro.parallel.chunking import chunk_bounds

__all__ = ["LocalCommunicator", "run_spmd"]


class LocalCommunicator:
    """Collectives for a fixed-size group of threads.

    One instance is shared by all ranks; each rank passes its own
    ``rank`` to the calls.  Collectives are synchronizing: every rank must
    reach the call before any rank proceeds (implemented on
    :class:`threading.Barrier`).
    """

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError("communicator size must be >= 1")
        self.size = size
        self._barrier = threading.Barrier(size)
        self._slots: list = [None] * size
        self._bcast_box: list = [None]

    def barrier(self) -> None:
        """Block until all ranks arrive."""
        self._barrier.wait()

    def bcast(self, obj, rank: int, root: int = 0):
        """Broadcast ``obj`` from ``root`` to every rank (returned value)."""
        self._check_rank(rank)
        self._check_rank(root)
        if rank == root:
            self._bcast_box[0] = obj
        self._barrier.wait()
        out = self._bcast_box[0]
        self._barrier.wait()  # keep the box stable until all ranks copied
        return out

    def scatter(self, items, rank: int, root: int = 0):
        """Root distributes ``items`` (len == size); each rank gets one."""
        self._check_rank(rank)
        if rank == root:
            items = list(items)
            if len(items) != self.size:
                raise ValueError(f"scatter needs exactly {self.size} items")
            self._slots[:] = items
        self._barrier.wait()
        out = self._slots[rank]
        self._barrier.wait()
        return out

    def gather(self, obj, rank: int, root: int = 0):
        """Collect one object per rank; root receives the list, others None."""
        self._check_rank(rank)
        self._slots[rank] = obj
        self._barrier.wait()
        out = list(self._slots) if rank == root else None
        self._barrier.wait()
        return out

    def allgather(self, obj, rank: int) -> list:
        """Collect one object per rank on every rank."""
        self._check_rank(rank)
        self._slots[rank] = obj
        self._barrier.wait()
        out = list(self._slots)
        self._barrier.wait()
        return out

    def allreduce(self, value, rank: int, op: Callable = None):
        """Reduce values from all ranks with ``op`` (default: sum)."""
        parts = self.allgather(value, rank)
        if op is None:
            total = parts[0]
            for p in parts[1:]:
                total = total + p
            return total
        total = parts[0]
        for p in parts[1:]:
            total = op(total, p)
        return total

    def chunk_for_rank(self, n: int, rank: int) -> tuple[int, int]:
        """This rank's ``[lo, hi)`` share of ``range(n)`` (empty if none)."""
        self._check_rank(rank)
        bounds = chunk_bounds(n, self.size)
        return bounds[rank] if rank < len(bounds) else (n, n)

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range for size {self.size}")


def run_spmd(fn: Callable, size: int) -> list:
    """Run ``fn(comm, rank)`` on ``size`` threads; returns per-rank results.

    Exceptions on any rank abort the region and re-raise on the caller.
    """
    comm = LocalCommunicator(size)
    results: list = [None] * size
    errors: list = [None] * size

    def worker(rank: int) -> None:
        try:
            results[rank] = fn(comm, rank)
        except BaseException as exc:  # noqa: BLE001 - propagated below
            errors[rank] = exc
            comm._barrier.abort()

    threads = [threading.Thread(target=worker, args=(r,)) for r in range(size)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    for exc in errors:
        if exc is not None and not isinstance(exc, threading.BrokenBarrierError):
            raise exc
    for exc in errors:
        if exc is not None:
            raise exc
    return results
