"""Time-partitioned table segments.

A month of F-DATA-scale trace is millions of rows; keeping them in one
monolithic :class:`~repro.storage.engine.Table` makes every index
rebuild and sortedness check proportional to the whole table.  A
:class:`SegmentedTable` splits the rows into fixed-width partitions of
one key column (day-sized ``submit_time`` buckets for the jobs table),
so per-segment work is bounded by segment size and a range scan touches
only the segments whose key interval overlaps the query window.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Sequence

import numpy as np

from repro.storage.engine import SCAN_BATCH_ROWS, ResultSet, Table
from repro.storage.schema import TableSchema

__all__ = ["SegmentedTable"]


class SegmentedTable:
    """An append-only table split into fixed-width partitions of one key.

    Rows live in the segment numbered ``floor(row[key] / width)``; each
    segment is an ordinary :class:`Table` created on first use.  The
    partition key must be numeric (it is bucketed arithmetically).
    """

    def __init__(self, schema: TableSchema, key: str, width: float) -> None:
        if key not in schema:
            raise KeyError(f"partition key {key!r} not in schema {schema.name!r}")
        if width <= 0:
            raise ValueError("partition width must be positive")
        self.schema = schema
        self.key = key
        self.width = float(width)
        self._segments: dict[int, Table] = {}

    def __len__(self) -> int:
        return sum(len(t) for t in self._segments.values())

    @property
    def segment_ids(self) -> tuple[int, ...]:
        """Bucket numbers of the populated segments, ascending."""
        return tuple(sorted(self._segments))

    def segment(self, bucket: int) -> Table:
        """The backing :class:`Table` of one populated segment."""
        return self._segments[bucket]

    # -- writes --------------------------------------------------------------

    def insert_columns(self, columns: Mapping[str, np.ndarray]) -> int:
        """Bulk columnar insert, routing each row to its partition."""
        keys = np.asarray(columns[self.key], dtype=float)
        buckets = np.floor_divide(keys, self.width).astype(np.int64)
        total = 0
        for bucket in np.unique(buckets):
            mask = buckets == bucket
            seg = self._segments.get(int(bucket))
            if seg is None:
                seg = Table(self.schema)
                self._segments[int(bucket)] = seg
            total += seg.insert_columns(
                {name: np.asarray(values)[mask] for name, values in columns.items()}
            )
        return total

    # -- chunked scans -------------------------------------------------------

    def scan_batches(
        self,
        low=None,
        high=None,
        *,
        batch_rows: int = SCAN_BATCH_ROWS,
        columns: Sequence[str] | None = None,
    ) -> Iterator[ResultSet]:
        # streaming: chains per-segment chunked scans in partition order
        # scale: -> batch
        """Yield rows with ``low <= key < high`` as bounded columnar batches.

        Segments whose key interval falls outside ``[low, high)`` are
        skipped without being read.  Batches arrive in partition order;
        within a segment, in that segment's scan order (submit-sorted
        loads stay submit-sorted end to end).
        """
        for bucket in sorted(self._segments):
            seg_low = bucket * self.width
            if high is not None and seg_low >= high:
                break
            if low is not None and seg_low + self.width <= low:
                continue
            yield from self._segments[bucket].scan_batches(
                self.key, low, high, batch_rows=batch_rows, columns=columns
            )
