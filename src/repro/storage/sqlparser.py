"""Tokenizer and recursive-descent parser for the engine's SQL subset.

Supported grammar (case-insensitive keywords)::

    stmt        := select | insert | create
    create      := CREATE TABLE name '(' coldef (',' coldef)* ')'
    coldef      := name type [INDEXED]
    insert      := INSERT INTO name ['(' names ')'] VALUES tuple (',' tuple)*
    select      := SELECT ('*' | items) FROM name
                   [WHERE expr] [GROUP BY name]
                   [ORDER BY name [ASC|DESC]] [LIMIT int]
    items       := item (',' item)*
    item        := name | agg
    agg         := (COUNT|SUM|AVG|MIN|MAX) '(' ('*' | name) ')' 
    expr        := or_expr
    or_expr     := and_expr (OR and_expr)*
    and_expr    := not_expr (AND not_expr)*
    not_expr    := NOT not_expr | predicate
    predicate   := '(' expr ')'
                 | name cmp value
                 | name BETWEEN value AND value
                 | name [NOT] IN '(' value (',' value)* ')'
    cmp         := '=' | '==' | '!=' | '<>' | '<' | '<=' | '>' | '>='
    value       := number | 'string' | '?'   (positional parameter)

The parser builds a small AST of dataclasses consumed by the engine's
planner/executor.  It is intentionally strict: anything outside the subset
raises :class:`SQLSyntaxError` with the offending position.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Union

from repro.storage.schema import ColumnType

__all__ = [
    "SQLSyntaxError",
    "parse_sql",
    "Param",
    "Comparison",
    "Between",
    "InList",
    "Not",
    "And",
    "Or",
    "Select",
    "Insert",
    "CreateTable",
    "Aggregate",
]


class SQLSyntaxError(ValueError):
    """Raised when a statement does not conform to the supported subset."""


# -- AST ---------------------------------------------------------------------


@dataclass(frozen=True)
class Param:
    """A positional ``?`` placeholder, numbered left to right from 0."""

    index: int


Value = Union[int, float, str, Param]


@dataclass(frozen=True)
class Comparison:
    column: str
    op: str  # one of = != < <= > >=
    value: Value


@dataclass(frozen=True)
class Between:
    column: str
    low: Value
    high: Value


@dataclass(frozen=True)
class InList:
    column: str
    values: tuple[Value, ...]
    negated: bool = False


@dataclass(frozen=True)
class Not:
    operand: "Expr"


@dataclass(frozen=True)
class And:
    operands: tuple["Expr", ...]


@dataclass(frozen=True)
class Or:
    operands: tuple["Expr", ...]


Expr = Union[Comparison, Between, InList, Not, And, Or]


@dataclass(frozen=True)
class Aggregate:
    """One aggregate select item, e.g. COUNT(*) or AVG(duration)."""

    func: str  # COUNT | SUM | AVG | MIN | MAX
    column: str | None  # None only for COUNT(*)

    @property
    def output_name(self) -> str:
        return f"{self.func.lower()}_{self.column}" if self.column else "count"


@dataclass(frozen=True)
class Select:
    table: str
    columns: tuple | None  # tuple of str | Aggregate; None means '*'
    where: Expr | None = None
    order_by: str | None = None
    descending: bool = False
    limit: int | None = None
    group_by: str | None = None

    @property
    def aggregates(self) -> tuple:
        if self.columns is None:
            return ()
        return tuple(c for c in self.columns if isinstance(c, Aggregate))


@dataclass(frozen=True)
class Insert:
    table: str
    columns: tuple[str, ...] | None
    rows: tuple[tuple[Value, ...], ...]


@dataclass(frozen=True)
class CreateTable:
    table: str
    columns: tuple[tuple[str, ColumnType, bool], ...]  # (name, type, indexed)


# -- tokenizer -----------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>[-+]?(\d+\.\d*|\.\d+|\d+)([eE][-+]?\d+)?)
  | (?P<string>'(?:[^']|'')*')
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op><=|>=|<>|==|!=|=|<|>)
  | (?P<punct>[(),*?])
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "SELECT", "FROM", "WHERE", "ORDER", "BY", "ASC", "DESC", "LIMIT",
    "INSERT", "INTO", "VALUES", "CREATE", "TABLE", "AND", "OR", "NOT",
    "BETWEEN", "IN", "INDEXED", "INTEGER", "REAL", "TEXT",
    "COUNT", "SUM", "AVG", "MIN", "MAX", "GROUP",
}


@dataclass(frozen=True)
class _Token:
    kind: str  # keyword | name | number | string | op | punct | end
    text: str
    pos: int


def _tokenize(sql: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(sql):
        m = _TOKEN_RE.match(sql, pos)
        if m is None:
            raise SQLSyntaxError(f"unexpected character {sql[pos]!r} at {pos}")
        pos = m.end()
        if m.lastgroup == "ws":
            continue
        text = m.group()
        kind = m.lastgroup
        if kind == "name" and text.upper() in _KEYWORDS:
            kind, text = "keyword", text.upper()
        tokens.append(_Token(kind, text, m.start()))
    tokens.append(_Token("end", "", len(sql)))
    return tokens


# -- parser ---------------------------------------------------------------------


class _Parser:
    def __init__(self, sql: str) -> None:
        self.sql = sql
        self.tokens = _tokenize(sql)
        self.i = 0
        self.n_params = 0

    # token helpers
    def peek(self) -> _Token:
        return self.tokens[self.i]

    def advance(self) -> _Token:
        tok = self.tokens[self.i]
        self.i += 1
        return tok

    def expect(self, kind: str, text: str | None = None) -> _Token:
        tok = self.peek()
        if tok.kind != kind or (text is not None and tok.text != text):
            want = text or kind
            raise SQLSyntaxError(f"expected {want} at position {tok.pos}, got {tok.text!r}")
        return self.advance()

    def accept(self, kind: str, text: str | None = None) -> _Token | None:
        tok = self.peek()
        if tok.kind == kind and (text is None or tok.text == text):
            return self.advance()
        return None

    # entry point
    def parse(self):
        tok = self.peek()
        if tok.kind != "keyword":
            raise SQLSyntaxError(f"statement must start with a keyword, got {tok.text!r}")
        if tok.text == "SELECT":
            stmt = self.parse_select()
        elif tok.text == "INSERT":
            stmt = self.parse_insert()
        elif tok.text == "CREATE":
            stmt = self.parse_create()
        else:
            raise SQLSyntaxError(f"unsupported statement {tok.text}")
        self.expect("end")
        return stmt

    # values
    def parse_value(self) -> Value:
        tok = self.peek()
        if tok.kind == "number":
            self.advance()
            text = tok.text
            if any(c in text for c in ".eE"):
                return float(text)
            return int(text)
        if tok.kind == "string":
            self.advance()
            return tok.text[1:-1].replace("''", "'")
        if tok.kind == "punct" and tok.text == "?":
            self.advance()
            p = Param(self.n_params)
            self.n_params += 1
            return p
        raise SQLSyntaxError(f"expected a value at position {tok.pos}, got {tok.text!r}")

    # expressions
    def parse_expr(self) -> Expr:
        return self.parse_or()

    def parse_or(self) -> Expr:
        operands = [self.parse_and()]
        while self.accept("keyword", "OR"):
            operands.append(self.parse_and())
        return operands[0] if len(operands) == 1 else Or(tuple(operands))

    def parse_and(self) -> Expr:
        operands = [self.parse_not()]
        while self.accept("keyword", "AND"):
            operands.append(self.parse_not())
        return operands[0] if len(operands) == 1 else And(tuple(operands))

    def parse_not(self) -> Expr:
        if self.accept("keyword", "NOT"):
            return Not(self.parse_not())
        return self.parse_predicate()

    def parse_predicate(self) -> Expr:
        if self.accept("punct", "("):
            inner = self.parse_expr()
            self.expect("punct", ")")
            return inner
        col = self.expect("name").text
        tok = self.peek()
        if tok.kind == "op":
            self.advance()
            op = {"==": "=", "<>": "!="}.get(tok.text, tok.text)
            return Comparison(col, op, self.parse_value())
        if self.accept("keyword", "BETWEEN"):
            low = self.parse_value()
            self.expect("keyword", "AND")
            high = self.parse_value()
            return Between(col, low, high)
        negated = bool(self.accept("keyword", "NOT"))
        if self.accept("keyword", "IN"):
            self.expect("punct", "(")
            values = [self.parse_value()]
            while self.accept("punct", ","):
                values.append(self.parse_value())
            self.expect("punct", ")")
            return InList(col, tuple(values), negated=negated)
        raise SQLSyntaxError(f"expected a predicate after column {col!r} at {tok.pos}")

    # statements
    def parse_select_item(self):
        tok = self.peek()
        if tok.kind == "keyword" and tok.text in ("COUNT", "SUM", "AVG", "MIN", "MAX"):
            self.advance()
            self.expect("punct", "(")
            if self.accept("punct", "*"):
                if tok.text != "COUNT":
                    raise SQLSyntaxError(f"{tok.text}(*) is not supported")
                col = None
            else:
                col = self.expect("name").text
            self.expect("punct", ")")
            return Aggregate(tok.text, col)
        return self.expect("name").text

    def parse_select(self) -> Select:
        self.expect("keyword", "SELECT")
        columns: tuple | None
        if self.accept("punct", "*"):
            columns = None
        else:
            items = [self.parse_select_item()]
            while self.accept("punct", ","):
                items.append(self.parse_select_item())
            columns = tuple(items)
        self.expect("keyword", "FROM")
        table = self.expect("name").text
        where = None
        if self.accept("keyword", "WHERE"):
            where = self.parse_expr()
        group_by = None
        if self.accept("keyword", "GROUP"):
            self.expect("keyword", "BY")
            group_by = self.expect("name").text
        order_by, descending = None, False
        if self.accept("keyword", "ORDER"):
            self.expect("keyword", "BY")
            order_by = self.expect("name").text
            if self.accept("keyword", "DESC"):
                descending = True
            else:
                self.accept("keyword", "ASC")
        limit = None
        if self.accept("keyword", "LIMIT"):
            tok = self.expect("number")
            if any(c in tok.text for c in ".eE"):
                raise SQLSyntaxError("LIMIT must be an integer")
            limit = int(tok.text)
            if limit < 0:
                raise SQLSyntaxError("LIMIT must be non-negative")
        stmt = Select(table, columns, where, order_by, descending, limit, group_by)
        self._validate_select(stmt)
        return stmt

    @staticmethod
    def _validate_select(stmt: Select) -> None:
        aggs = stmt.aggregates
        if stmt.group_by is not None and not aggs:
            raise SQLSyntaxError("GROUP BY requires at least one aggregate")
        if not aggs:
            return
        if stmt.columns is None:
            raise SQLSyntaxError("cannot mix * with aggregates")
        plain = [c for c in stmt.columns if isinstance(c, str)]
        if stmt.group_by is None and plain:
            raise SQLSyntaxError("plain columns beside aggregates need GROUP BY")
        for c in plain:
            if c != stmt.group_by:
                raise SQLSyntaxError(
                    f"column {c!r} must appear in GROUP BY to be selected"
                )

    def parse_insert(self) -> Insert:
        self.expect("keyword", "INSERT")
        self.expect("keyword", "INTO")
        table = self.expect("name").text
        columns: tuple[str, ...] | None = None
        if self.accept("punct", "("):
            names = [self.expect("name").text]
            while self.accept("punct", ","):
                names.append(self.expect("name").text)
            self.expect("punct", ")")
            columns = tuple(names)
        self.expect("keyword", "VALUES")
        rows = [self.parse_tuple()]
        while self.accept("punct", ","):
            rows.append(self.parse_tuple())
        return Insert(table, columns, tuple(rows))

    def parse_tuple(self) -> tuple[Value, ...]:
        self.expect("punct", "(")
        values = [self.parse_value()]
        while self.accept("punct", ","):
            values.append(self.parse_value())
        self.expect("punct", ")")
        return tuple(values)

    def parse_create(self) -> CreateTable:
        self.expect("keyword", "CREATE")
        self.expect("keyword", "TABLE")
        table = self.expect("name").text
        self.expect("punct", "(")
        cols: list[tuple[str, ColumnType, bool]] = []
        while True:
            name = self.expect("name").text
            tok = self.peek()
            if tok.kind != "keyword" or tok.text not in ("INTEGER", "REAL", "TEXT"):
                raise SQLSyntaxError(f"expected a column type at {tok.pos}")
            self.advance()
            ctype = ColumnType[tok.text]
            indexed = bool(self.accept("keyword", "INDEXED"))
            cols.append((name, ctype, indexed))
            if not self.accept("punct", ","):
                break
        self.expect("punct", ")")
        return CreateTable(table, tuple(cols))


def parse_sql(sql: str):
    """Parse one SQL statement, returning its AST node.

    Raises :class:`SQLSyntaxError` on anything outside the supported subset.
    """
    return _Parser(sql).parse()
