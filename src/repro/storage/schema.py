"""Table schema definitions for the jobs data storage."""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

__all__ = ["ColumnType", "ColumnDef", "TableSchema"]


class ColumnType(enum.Enum):
    """SQL column types supported by the engine."""

    INTEGER = "INTEGER"
    REAL = "REAL"
    TEXT = "TEXT"

    @property
    def dtype(self) -> np.dtype:
        """Numpy dtype backing this column type in the column store."""
        if self is ColumnType.INTEGER:
            return np.dtype(np.int64)
        if self is ColumnType.REAL:
            return np.dtype(np.float64)
        return np.dtype(object)

    def coerce(self, value):
        """Coerce one Python value to this column type (raises on mismatch)."""
        if self is ColumnType.INTEGER:
            if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
                raise TypeError(f"expected INTEGER, got {value!r}")
            return int(value)
        if self is ColumnType.REAL:
            if isinstance(value, bool) or not isinstance(value, (int, float, np.integer, np.floating)):
                raise TypeError(f"expected REAL, got {value!r}")
            return float(value)
        if not isinstance(value, str):
            raise TypeError(f"expected TEXT, got {value!r}")
        return value


@dataclass(frozen=True)
class ColumnDef:
    """One column: name, type, and whether a sorted index is maintained."""

    name: str
    ctype: ColumnType
    indexed: bool = False

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise ValueError(f"invalid column name {self.name!r}")


class TableSchema:
    """Ordered collection of column definitions."""

    def __init__(self, name: str, columns: list[ColumnDef]) -> None:
        if not name.isidentifier():
            raise ValueError(f"invalid table name {name!r}")
        if not columns:
            raise ValueError("a table needs at least one column")
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise ValueError("duplicate column names")
        self.name = name
        self.columns = list(columns)
        self._by_name = {c.name: c for c in columns}

    def __contains__(self, col: str) -> bool:
        return col in self._by_name

    def __getitem__(self, col: str) -> ColumnDef:
        try:
            return self._by_name[col]
        except KeyError:
            raise KeyError(f"table {self.name!r} has no column {col!r}") from None

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    @property
    def indexed_columns(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns if c.indexed)
