"""Sorted secondary indexes.

An index stores an ``argsort`` permutation over a column; equality and
range lookups become two ``searchsorted`` calls returning row ids in O(log
n), instead of a full column scan.  The engine appends rows in bulk, so the
index supports cheap batched rebuilds and is marked stale in between.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SortedIndex"]


class SortedIndex:
    """Sorted index over one column of a column-store table."""

    def __init__(self, column_name: str) -> None:
        self.column_name = column_name
        self._order: np.ndarray | None = None
        self._sorted_values: np.ndarray | None = None
        self._stale = True

    def invalidate(self) -> None:
        """Mark the index stale after the base table changed."""
        self._stale = True

    @property
    def is_stale(self) -> bool:
        return self._stale

    def rebuild(self, values: np.ndarray) -> None:
        """Rebuild from the current column contents."""
        order = np.argsort(values, kind="stable")
        self._order = order
        self._sorted_values = values[order]
        self._stale = False

    def _require_fresh(self) -> None:
        if self._stale or self._sorted_values is None:
            raise RuntimeError(
                f"index on {self.column_name!r} is stale; engine must rebuild first"
            )

    def lookup_eq(self, value) -> np.ndarray:
        """Row ids with column == value (unsorted order of row id)."""
        self._require_fresh()
        lo = np.searchsorted(self._sorted_values, value, side="left")
        hi = np.searchsorted(self._sorted_values, value, side="right")
        return self._order[lo:hi]

    def lookup_range(
        self,
        low=None,
        high=None,
        *,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> np.ndarray:
        """Row ids with column in the given (optionally open) interval."""
        self._require_fresh()
        sv = self._sorted_values
        lo_i = 0
        hi_i = len(sv)
        if low is not None:
            lo_i = np.searchsorted(sv, low, side="left" if low_inclusive else "right")
        if high is not None:
            hi_i = np.searchsorted(sv, high, side="right" if high_inclusive else "left")
        if hi_i < lo_i:
            hi_i = lo_i
        return self._order[lo_i:hi_i]

    def lookup_in(self, values) -> np.ndarray:
        """Row ids with column value in an explicit set."""
        self._require_fresh()
        parts = [self.lookup_eq(v) for v in values]
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(parts))
