"""Jobs data storage substrate.

Fugaku's operations software stores job data in a relational database; the
paper's Data Fetcher "generates an SQL query to the job's data storage"
(§III-A).  To exercise that contract end-to-end without an external DBMS,
this subpackage implements a small in-process relational engine:

- :mod:`repro.storage.schema` — typed table schemas (INTEGER/REAL/TEXT).
- :mod:`repro.storage.sqlparser` — tokenizer + recursive-descent parser for
  the SQL subset the framework needs (CREATE TABLE / INSERT / SELECT with
  WHERE, ORDER BY, LIMIT, parameter placeholders).
- :mod:`repro.storage.engine` — column-store tables with vectorized filter
  evaluation and a tiny planner that uses sorted indexes for equality and
  range predicates.
- :mod:`repro.storage.index` — sorted secondary indexes.
- :mod:`repro.storage.partition` — fixed-width time-partitioned segments.
"""

from repro.storage.schema import ColumnType, ColumnDef, TableSchema
from repro.storage.engine import Database, Table, ResultSet, SCAN_BATCH_ROWS
from repro.storage.partition import SegmentedTable
from repro.storage.sqlparser import parse_sql, SQLSyntaxError
from repro.storage.index import SortedIndex

__all__ = [
    "ColumnType",
    "ColumnDef",
    "TableSchema",
    "Database",
    "Table",
    "ResultSet",
    "SCAN_BATCH_ROWS",
    "SegmentedTable",
    "parse_sql",
    "SQLSyntaxError",
    "SortedIndex",
]
