"""Column-store tables, vectorized predicate evaluation, and the Database.

Execution model: every table column is a growable numpy array.  A SELECT
evaluates its WHERE clause either through a sorted index (when the planner
finds a single indexable predicate at the top level of an AND chain) or as
a vectorized boolean mask over whole columns — never a Python-level loop
over rows.
"""

from __future__ import annotations

from itertools import islice
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.storage.index import SortedIndex
from repro.storage.schema import ColumnDef, ColumnType, TableSchema
from repro.storage.sqlparser import (
    Aggregate,
    And,
    Between,
    Comparison,
    CreateTable,
    Expr,
    InList,
    Insert,
    Not,
    Or,
    Param,
    Select,
    parse_sql,
)

__all__ = ["Table", "ResultSet", "Database", "SCAN_BATCH_ROWS"]


class ResultSet:
    """Result of a SELECT: named columns plus row-dict iteration."""

    def __init__(self, columns: dict[str, np.ndarray]) -> None:
        self._cols = columns
        lengths = {len(v) for v in columns.values()}
        if len(lengths) > 1:
            raise ValueError("ragged result set")
        self._n = lengths.pop() if lengths else 0

    def __len__(self) -> int:
        return self._n

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(self._cols)

    def column(self, name: str) -> np.ndarray:
        return self._cols[name]

    def iter_rows(self) -> Iterator[dict]:
        # streaming: one row dict per yield, constant memory
        # scale: -> bounded
        """Yield per-row dicts one at a time.

        This is the internal row-iteration API: peak memory is one row,
        whatever the result size.  Callers that need a list (the storage
        boundary: CLI output, JSON serialization) use :meth:`rows`.
        """
        names = list(self._cols)
        cols = [self._cols[n] for n in names]
        for i in range(self._n):
            yield {n: _to_python(c[i]) for n, c in zip(names, cols)}

    def rows(self) -> list[dict]:
        # scale: -> jobs
        """Materialize every row as a dict — storage-boundary API only.

        The list is as large as the result set; internal callers iterate
        :meth:`iter_rows` instead so jobs-scale results never exist as
        python objects all at once.
        """
        return list(self.iter_rows())


def _to_python(v):
    if isinstance(v, np.integer):
        return int(v)
    if isinstance(v, np.floating):
        return float(v)
    return v


_GROWTH = 1.5
_MIN_CAPACITY = 64
#: Rows coerced per chunk when ingesting an arbitrary iterable.
_INSERT_CHUNK = 4096
#: Default rows per yielded batch in :meth:`Table.scan_batches`.
SCAN_BATCH_ROWS = 65536


class Table:
    """One table: schema + growable column arrays + optional sorted indexes."""

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._n = 0
        self._capacity = _MIN_CAPACITY
        self._data: dict[str, np.ndarray] = {
            c.name: np.empty(self._capacity, dtype=c.ctype.dtype) for c in schema.columns
        }
        self._indexes: dict[str, SortedIndex] = {
            name: SortedIndex(name) for name in schema.indexed_columns
        }
        # Lazily computed per-column monotonicity, invalidated on insert;
        # lets scan_batches take the searchsorted window fast path.
        self._sorted_cache: dict[str, bool] = {}

    def __len__(self) -> int:
        return self._n

    def column(self, name: str) -> np.ndarray:
        """Live view of a column's first ``n`` entries."""
        if name not in self.schema:
            raise KeyError(f"table {self.schema.name!r} has no column {name!r}")
        return self._data[name][: self._n]

    # -- writes -------------------------------------------------------------

    def _ensure_capacity(self, extra: int) -> None:
        need = self._n + extra
        if need <= self._capacity:
            return
        cap = max(int(self._capacity * _GROWTH), need, _MIN_CAPACITY)
        for name, arr in self._data.items():
            grown = np.empty(cap, dtype=arr.dtype)
            grown[: self._n] = arr[: self._n]
            self._data[name] = grown
        self._capacity = cap

    def insert_rows(self, columns: Sequence[str], rows: Iterable[Sequence]) -> int:
        # streaming: consumes its input in _INSERT_CHUNK-row chunks
        """Insert rows given as tuples ordered like ``columns``; returns count.

        ``rows`` may be any iterable — including a generator — and is
        consumed in fixed-size chunks, so peak memory is bounded by the
        chunk size, never the input length.  A malformed row raises
        mid-ingest; rows from earlier chunks stay inserted.
        """
        if set(columns) != set(self.schema.column_names):
            missing = set(self.schema.column_names) - set(columns)
            extra = set(columns) - set(self.schema.column_names)
            raise ValueError(f"column mismatch: missing={sorted(missing)} extra={sorted(extra)}")
        width = len(columns)
        ctypes = [self.schema[name].ctype for name in columns]
        it = iter(rows)
        total = 0
        while True:
            chunk = list(islice(it, _INSERT_CHUNK))
            if not chunk:
                break
            for r in chunk:
                if len(r) != width:
                    raise ValueError("row width does not match column list")
            self._ensure_capacity(len(chunk))
            start = self._n
            for j, name in enumerate(columns):
                ctype = ctypes[j]
                self._data[name][start : start + len(chunk)] = [
                    ctype.coerce(r[j]) for r in chunk
                ]
            self._n += len(chunk)
            total += len(chunk)
        if total:
            for idx in self._indexes.values():
                idx.invalidate()
            self._sorted_cache.clear()
        return total

    def insert_columns(self, columns: Mapping[str, np.ndarray]) -> int:
        """Bulk columnar insert (fast path used by trace loading)."""
        if set(columns) != set(self.schema.column_names):
            raise ValueError("column mismatch in bulk insert")
        lengths = {len(v) for v in columns.values()}
        if len(lengths) != 1:
            raise ValueError("ragged bulk insert")
        count = lengths.pop()
        self._ensure_capacity(count)
        start = self._n
        for name, values in columns.items():
            dtype = self.schema[name].ctype.dtype
            arr = np.asarray(values)
            if dtype == object:
                arr = arr.astype(object)
            else:
                arr = arr.astype(dtype, copy=False)
            self._data[name][start : start + count] = arr
        self._n += count
        for idx in self._indexes.values():
            idx.invalidate()
        self._sorted_cache.clear()
        return count

    # -- chunked scans -------------------------------------------------------

    def _is_sorted(self, name: str) -> bool:
        """Cached non-decreasing check of a column, in bounded windows."""
        cached = self._sorted_cache.get(name)
        if cached is not None:
            return cached
        col = self.column(name)
        ok = True
        for start in range(0, max(len(col) - 1, 0), SCAN_BATCH_ROWS):
            window = col[start : start + SCAN_BATCH_ROWS + 1]
            if np.any(window[1:] < window[:-1]):
                ok = False
                break
        self._sorted_cache[name] = ok
        return ok

    def scan_batches(
        self,
        column: str,
        low=None,
        high=None,
        *,
        batch_rows: int = SCAN_BATCH_ROWS,
        columns: Sequence[str] | None = None,
    ) -> Iterator[ResultSet]:
        # streaming: columnar range scan, one ~batch_rows ResultSet per yield
        # scale: -> batch
        """Yield rows with ``low <= column < high`` as bounded columnar batches.

        Peak memory is O(``batch_rows``), never O(table).  When ``column``
        is stored in non-decreasing order (checked once and cached until
        the next insert) the matching rows are a contiguous window found
        by binary search and sliced out directly; otherwise each window
        of the table is mask-filtered in turn, preserving row order.
        ``low``/``high`` of ``None`` leave that side unbounded.
        """
        if column not in self.schema:
            raise KeyError(f"table {self.schema.name!r} has no column {column!r}")
        out_cols = tuple(columns) if columns is not None else self.schema.column_names
        for c in out_cols:
            if c not in self.schema:
                raise KeyError(f"unknown column {c!r} in scan column list")
        if batch_rows <= 0:
            raise ValueError("batch_rows must be positive")
        n = self._n
        key = self._data[column][:n]
        if self._is_sorted(column):
            lo = 0 if low is None else int(np.searchsorted(key, low, side="left"))
            hi = n if high is None else int(np.searchsorted(key, high, side="left"))
            for start in range(lo, hi, batch_rows):
                stop = min(start + batch_rows, hi)
                yield ResultSet(
                    {c: self._data[c][start:stop].copy() for c in out_cols}
                )
            return
        for start in range(0, n, batch_rows):
            stop = min(start + batch_rows, n)
            window = key[start:stop]
            mask = np.ones(stop - start, dtype=bool)
            if low is not None:
                mask &= window >= low
            if high is not None:
                mask &= window < high
            if not mask.any():
                continue
            yield ResultSet({c: self._data[c][start:stop][mask] for c in out_cols})

    # -- index management ------------------------------------------------------

    def _fresh_index(self, name: str) -> SortedIndex | None:
        idx = self._indexes.get(name)
        if idx is None:
            return None
        if idx.is_stale:
            idx.rebuild(self.column(name))
        return idx


def _resolve(value, params: Sequence):
    if isinstance(value, Param):
        if value.index >= len(params):
            raise ValueError(f"statement expects parameter {value.index}, got {len(params)}")
        return params[value.index]
    return value


class Database:
    """A named collection of tables executing the SQL subset.

    Example
    -------
    >>> db = Database()
    >>> db.execute("CREATE TABLE jobs (job_id INTEGER INDEXED, user_name TEXT)")
    >>> db.execute("INSERT INTO jobs (job_id, user_name) VALUES (1, 'alice')")
    1
    >>> db.execute("SELECT user_name FROM jobs WHERE job_id = ?", [1]).rows()
    [{'user_name': 'alice'}]
    """

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}

    # -- catalog ------------------------------------------------------------

    @property
    def table_names(self) -> tuple[str, ...]:
        return tuple(self._tables)

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise KeyError(f"no such table {name!r}") from None

    def create_table(self, schema: TableSchema) -> Table:
        if schema.name in self._tables:
            raise ValueError(f"table {schema.name!r} already exists")
        t = Table(schema)
        self._tables[schema.name] = t
        return t

    # -- entry point -----------------------------------------------------------

    def execute(self, sql: str, params: Sequence = ()):
        """Parse and run one statement.

        Returns a :class:`ResultSet` for SELECT, the inserted row count for
        INSERT, and the new :class:`Table` for CREATE TABLE.
        """
        stmt = parse_sql(sql)
        if isinstance(stmt, Select):
            return self._run_select(stmt, params)
        if isinstance(stmt, Insert):
            return self._run_insert(stmt, params)
        if isinstance(stmt, CreateTable):
            cols = [ColumnDef(n, t, indexed) for n, t, indexed in stmt.columns]
            return self.create_table(TableSchema(stmt.table, cols))
        raise TypeError(f"unhandled statement {stmt!r}")  # pragma: no cover

    # -- INSERT -------------------------------------------------------------------

    def _run_insert(self, stmt: Insert, params: Sequence) -> int:
        table = self.table(stmt.table)
        columns = stmt.columns or table.schema.column_names
        rows = [tuple(_resolve(v, params) for v in row) for row in stmt.rows]
        return table.insert_rows(columns, rows)

    # -- SELECT --------------------------------------------------------------------

    def _run_select(self, stmt: Select, params: Sequence) -> ResultSet:
        table = self.table(stmt.table)
        if stmt.aggregates:
            return self._run_aggregate(table, stmt, params)
        out_cols = stmt.columns or table.schema.column_names
        for c in out_cols:
            if c not in table.schema:
                raise KeyError(f"unknown column {c!r} in SELECT list")

        rows = self._plan_where(table, stmt.where, params)

        if stmt.order_by is not None:
            if stmt.order_by not in table.schema:
                raise KeyError(f"unknown ORDER BY column {stmt.order_by!r}")
            keys = table.column(stmt.order_by)[rows]
            order = np.argsort(keys, kind="stable")
            if stmt.descending:
                order = order[::-1]
            rows = rows[order]
        if stmt.limit is not None:
            rows = rows[: stmt.limit]

        return ResultSet({c: table.column(c)[rows].copy() for c in out_cols})

    # -- aggregates ----------------------------------------------------------------

    def _run_aggregate(self, table: Table, stmt: Select, params: Sequence) -> ResultSet:
        """Execute COUNT/SUM/AVG/MIN/MAX, optionally grouped by one column."""
        for agg in stmt.aggregates:
            if agg.column is not None and agg.column not in table.schema:
                raise KeyError(f"unknown column {agg.column!r} in aggregate")
            if agg.column is not None and agg.func != "COUNT":
                if table.schema[agg.column].ctype.dtype == object:
                    raise TypeError(
                        f"{agg.func} over TEXT column {agg.column!r} is not supported"
                    )
        if stmt.group_by is not None and stmt.group_by not in table.schema:
            raise KeyError(f"unknown GROUP BY column {stmt.group_by!r}")
        if stmt.order_by is not None and stmt.order_by != stmt.group_by:
            raise KeyError("aggregate queries can only ORDER BY the group column")

        rows = self._plan_where(table, stmt.where, params)

        def compute(agg: Aggregate, sel: np.ndarray):
            if agg.func == "COUNT":
                return int(sel.size)
            values = table.column(agg.column)[sel]
            if values.size == 0:
                return 0.0 if agg.func in ("SUM",) else float("nan")
            if agg.func == "SUM":
                return float(values.sum())
            if agg.func == "AVG":
                return float(values.mean())
            if agg.func == "MIN":
                return _to_python(values.min())
            return _to_python(values.max())

        if stmt.group_by is None:
            data = {
                agg.output_name: np.array([compute(agg, rows)])
                for agg in stmt.aggregates
            }
            return ResultSet(data)

        keys = table.column(stmt.group_by)[rows]
        uniques, inverse = np.unique(keys, return_inverse=True)
        per_group = [rows[inverse == g] for g in range(len(uniques))]
        out: dict[str, list] = {stmt.group_by: list(uniques)}
        for agg in stmt.aggregates:
            out[agg.output_name] = [compute(agg, sel) for sel in per_group]
        # preserve the select-list ordering of output columns
        ordered: dict[str, np.ndarray] = {}
        for item in stmt.columns:
            name = item if isinstance(item, str) else item.output_name
            values = out[name]
            ordered[name] = (
                np.array(values, dtype=object)
                if name == stmt.group_by and table.schema[name].ctype.dtype == object
                else np.asarray(values)
            )
        order = np.argsort(ordered[stmt.group_by]) if stmt.group_by in ordered else None
        if order is not None and stmt.descending:
            order = order[::-1]
        if order is not None:
            ordered = {k: v[order] for k, v in ordered.items()}
        if stmt.limit is not None:
            ordered = {k: v[: stmt.limit] for k, v in ordered.items()}
        return ResultSet(ordered)

    # -- planner / filter ---------------------------------------------------------

    def _plan_where(self, table: Table, where: Expr | None, params: Sequence) -> np.ndarray:
        n = len(table)
        if where is None:
            return np.arange(n, dtype=np.int64)

        # Try index route: a single indexable predicate, or the first
        # indexable conjunct of a top-level AND (remaining conjuncts are
        # mask-filtered over the narrowed candidate set).
        conjuncts = list(where.operands) if isinstance(where, And) else [where]
        for i, pred in enumerate(conjuncts):
            rows = self._index_lookup(table, pred, params)
            if rows is not None:
                rest = conjuncts[:i] + conjuncts[i + 1 :]
                if not rest:
                    return np.sort(rows)
                remaining: Expr = rest[0] if len(rest) == 1 else And(tuple(rest))
                mask = self._eval_expr(table, remaining, params, rows)
                return np.sort(rows[mask])

        mask = self._eval_expr(table, where, params, None)
        return np.flatnonzero(mask)

    def _index_lookup(self, table: Table, pred: Expr, params: Sequence) -> np.ndarray | None:
        """Row ids from a sorted index, or None if not indexable."""
        if isinstance(pred, Comparison) and pred.op in ("=", "<", "<=", ">", ">="):
            idx = table._fresh_index(pred.column)
            if idx is None:
                return None
            v = _resolve(pred.value, params)
            if pred.op == "=":
                return idx.lookup_eq(v)
            if pred.op == "<":
                return idx.lookup_range(high=v, high_inclusive=False)
            if pred.op == "<=":
                return idx.lookup_range(high=v)
            if pred.op == ">":
                return idx.lookup_range(low=v, low_inclusive=False)
            return idx.lookup_range(low=v)
        if isinstance(pred, Between):
            idx = table._fresh_index(pred.column)
            if idx is None:
                return None
            return idx.lookup_range(
                low=_resolve(pred.low, params), high=_resolve(pred.high, params)
            )
        if isinstance(pred, InList) and not pred.negated:
            idx = table._fresh_index(pred.column)
            if idx is None:
                return None
            return idx.lookup_in([_resolve(v, params) for v in pred.values])
        return None

    def _eval_expr(
        self, table: Table, expr: Expr, params: Sequence, rows: np.ndarray | None
    ) -> np.ndarray:
        """Vectorized boolean mask of ``expr`` over all rows or a candidate set."""

        def col(name: str) -> np.ndarray:
            if name not in table.schema:
                raise KeyError(f"unknown column {name!r} in WHERE clause")
            c = table.column(name)
            return c if rows is None else c[rows]

        if isinstance(expr, Comparison):
            c = col(expr.column)
            v = _resolve(expr.value, params)
            if expr.op == "=":
                return c == v
            if expr.op == "!=":
                return c != v
            if expr.op == "<":
                return c < v
            if expr.op == "<=":
                return c <= v
            if expr.op == ">":
                return c > v
            return c >= v
        if isinstance(expr, Between):
            c = col(expr.column)
            return (c >= _resolve(expr.low, params)) & (c <= _resolve(expr.high, params))
        if isinstance(expr, InList):
            c = col(expr.column)
            mask = np.zeros(c.shape, dtype=bool)
            for v in expr.values:
                mask |= c == _resolve(v, params)
            return ~mask if expr.negated else mask
        if isinstance(expr, Not):
            return ~self._eval_expr(table, expr.operand, params, rows)
        if isinstance(expr, And):
            mask = self._eval_expr(table, expr.operands[0], params, rows)
            for op in expr.operands[1:]:
                mask = mask & self._eval_expr(table, op, params, rows)
            return mask
        if isinstance(expr, Or):
            mask = self._eval_expr(table, expr.operands[0], params, rows)
            for op in expr.operands[1:]:
                mask = mask | self._eval_expr(table, op, params, rows)
            return mask
        raise TypeError(f"unhandled expression {expr!r}")  # pragma: no cover
