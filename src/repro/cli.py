"""Command-line interface for the reproduction.

Four subcommands mirror the repository's workflows:

- ``generate``      build a synthetic Fugaku trace and save it to disk;
- ``characterize``  label a saved trace and print the §IV analysis summary;
- ``evaluate``      run the online prediction algorithm on a saved trace;
- ``serve``         deploy the HTTP backend on a saved (or fresh) trace.

Entry point: ``python -m repro.cli <subcommand> ...`` (or call
:func:`main` with an argv list).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MCBound reproduction command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    g = sub.add_parser("generate", help="generate a synthetic Fugaku trace")
    g.add_argument("output", help="output path prefix (writes <p>.npz + <p>.strings.json)")
    g.add_argument("--scale", type=float, default=1 / 200,
                   help="fraction of the paper's 2.2M jobs (default 1/200)")
    g.add_argument("--seed", type=int, default=2024)

    c = sub.add_parser("characterize", help="label a trace and summarize it")
    c.add_argument("trace", help="trace path prefix from 'generate'")

    e = sub.add_parser("evaluate", help="run the online prediction algorithm")
    e.add_argument("trace", help="trace path prefix from 'generate'")
    e.add_argument("--algorithm", choices=("KNN", "RF", "NB"), default="RF")
    e.add_argument("--alpha", type=float, default=None,
                   help="training window in days (default: the model's best)")
    e.add_argument("--beta", type=float, default=1.0, help="retraining period in days")
    e.add_argument("--trees", type=int, default=15, help="RF size")

    s = sub.add_parser("serve", help="deploy the HTTP backend")
    s.add_argument("--trace", default=None, help="trace path prefix (default: generate fresh)")
    s.add_argument("--scale", type=float, default=1 / 400)
    s.add_argument("--port", type=int, default=8080)
    s.add_argument("--train-at-day", type=float, default=62.0,
                   help="day index of the initial Training Workflow trigger")
    s.add_argument("--smoke", action="store_true",
                   help="train, probe the API once, then exit (used by tests)")
    return parser


def _load_trace(path: str):
    from repro.fugaku.trace import JobTrace

    return JobTrace.load(path)


def _cmd_generate(args) -> int:
    from repro.fugaku import generate_trace

    trace = generate_trace(scale=args.scale, seed=args.seed)
    trace.save(args.output)
    print(f"wrote {len(trace):,} jobs to {args.output}.npz")
    return 0


def _cmd_characterize(args) -> int:
    from repro.analysis import table2_distribution
    from repro.core import JobCharacterizer
    from repro.evaluation.reporting import format_table

    trace = _load_trace(args.trace)
    characterizer = JobCharacterizer()
    labels = characterizer.labels_from_trace(trace)
    t2 = table2_distribution(trace, labels)
    print(f"{len(trace):,} jobs, ridge point {characterizer.ridge_point:.2f} Flops/Byte")
    print(format_table(
        ["Frequency", "memory-bound", "compute-bound", "Total"],
        t2.rows(), title="Distribution of job types",
    ))
    print(f"memory:compute ratio = {t2.memory_to_compute_ratio:.2f}")
    return 0


def _cmd_evaluate(args) -> int:
    from repro.evaluation import ModelSpec, OnlineEvaluator

    trace = _load_trace(args.trace)
    evaluator = OnlineEvaluator(trace)
    if args.algorithm == "KNN":
        spec = ModelSpec("KNN", "KNN", {"n_neighbors": 5, "algorithm": "brute"})
    elif args.algorithm == "NB":
        spec = ModelSpec("NB", "NB", {})
    else:
        spec = ModelSpec("RF", "RF", {
            "n_estimators": args.trees, "max_depth": 16,
            "splitter": "hist", "random_state": 0,
        })
    alpha = args.alpha if args.alpha is not None else spec.best_alpha
    result = evaluator.evaluate(
        spec.algorithm, spec.params, alpha=alpha, beta=args.beta, model_name=spec.name,
    )
    print(f"{spec.name} alpha={alpha:g} beta={args.beta:g}: "
          f"F1={result.f1:.4f} accuracy={result.accuracy:.4f} "
          f"({result.n_test_jobs:,} test jobs, {result.n_retrainings} retrainings)")
    print(f"mean training time : {result.mean_train_time:.3f} s/trigger")
    print(f"mean inference time: {result.mean_inference_time_per_job * 1e3:.3f} ms/job")
    return 0


def _cmd_serve(args) -> int:
    import json
    import urllib.request

    from repro.core import MCBound, MCBoundConfig, build_app, load_trace_into_db
    from repro.fugaku import generate_trace
    from repro.fugaku.workload import DAY_SECONDS
    from repro.web import serve

    trace = _load_trace(args.trace) if args.trace else generate_trace(scale=args.scale)
    framework = MCBound(
        MCBoundConfig(
            algorithm="KNN",
            model_params={"n_neighbors": 5, "algorithm": "brute"},
            alpha_days=30.0,
        ),
        load_trace_into_db(trace),
    )
    handle = serve(build_app(framework), port=args.port if not args.smoke else 0)
    print(f"listening on {handle.url}")

    now = args.train_at_day * DAY_SECONDS
    req = urllib.request.Request(
        f"{handle.url}/train",
        data=json.dumps({"now": now}).encode(),
        method="POST",
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=60) as resp:
        summary = json.loads(resp.read())
    print(f"trained on {summary['n_jobs']:,} jobs")

    if args.smoke:
        with urllib.request.urlopen(f"{handle.url}/health", timeout=10) as resp:
            print(resp.read().decode())
        handle.stop()
        return 0

    try:  # pragma: no cover - interactive path
        import time

        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        handle.stop()
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handler = {
        "generate": _cmd_generate,
        "characterize": _cmd_characterize,
        "evaluate": _cmd_evaluate,
        "serve": _cmd_serve,
    }[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
